//! Fault-tolerant sweep orchestration: a spec's cell grid as a dynamic
//! queue of cell-range chunks over worker *processes*, surviving worker
//! death, `kill -9`, and orchestrator restarts.
//!
//! The existing sharding machinery ([`Experiment::cells`] + `imc run
//! --cells` + [`ExperimentRun::merge`]) already lets a grid cross process
//! boundaries, but driving it used to assume every worker finishes. This
//! module is the driver that does not:
//!
//! * **Checkpointing.** A versioned `imc.sweep-state` JSON ledger
//!   ([`SWEEP_STATE_FORMAT`]) records every chunk's `pending → leased →
//!   done` transitions, fsynced atomically (temp file + rename) on each
//!   transition and keyed by the spec's content hash so stale state for a
//!   different experiment is rejected.
//! * **Crash tolerance.** Workers stream records through
//!   [`crate::record::RunWriter`], so a killed worker leaves a shard with a
//!   complete-prefix of records. On retry or [`sweep`] with
//!   `resume = true`, [`ExperimentRun::from_jsonl_partial`] salvages that
//!   prefix into a valid (smaller) done shard, and only the missing cells
//!   are re-leased.
//! * **Dead-worker handling.** Liveness comes from child exit status plus a
//!   configurable per-chunk timeout; transient deaths (signals, exit
//!   code 4) are retried with exponential backoff up to
//!   [`SweepConfig::max_attempts`], permanent failures (exit codes 1–3:
//!   the spec will never run) abort the sweep, and cells still missing
//!   after the retry budget produce a terminal error naming them.
//! * **Streaming merge.** [`stream_merge`] reassembles the shard files with
//!   a k-way merge on `cell_index`, holding one record per shard in memory
//!   instead of the full run, byte-identical to [`ExperimentRun::merge`].
//! * **Deterministic fault injection.** The [`FAULT_ENV`] hook makes `imc
//!   run` die like `kill -9` after a fixed number of cells (complete
//!   records plus one torn line), so the whole crash/salvage/resume path is
//!   testable reproducibly — alongside the real `kill -9` integration test.
//!
//! The end-to-end contract: a sweep that lost workers (or whole
//! orchestrator runs) and was resumed merges to bytes identical to an
//! unsharded `imc run` of the same spec.

use std::collections::HashMap;
use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::ops::Range;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use crate::experiment::ExperimentRun;
use crate::json::JsonValue;
use crate::record::{parse_run_header, run_header_json};
use crate::spec::ExperimentSpec;
use crate::{Error, Result, RunRecord};

/// Format tag of the sweep-state ledger file.
pub const SWEEP_STATE_FORMAT: &str = "imc.sweep-state";

/// Current version of the sweep-state format; readers reject other
/// versions.
pub const SWEEP_STATE_VERSION: u64 = 1;

/// Name of the state ledger inside the sweep working directory.
pub const STATE_FILE: &str = "sweep-state.json";

/// Name of the spec copy the workers run against, inside the sweep working
/// directory.
pub const SPEC_FILE: &str = "spec.json";

/// Environment variable of the deterministic fault-injection hook in `imc
/// run --out`: with `IMC_FAULT_EXIT_AFTER_CELLS=k`, the worker writes `k`
/// complete records plus one torn line and aborts (dying by signal, exactly
/// like `kill -9` mid-write). The orchestrator strips this variable from
/// worker environments unless [`SweepConfig::inject_fault_after_cells`]
/// asks for it, so a fault-injected sweep's *retries* run clean.
pub const FAULT_ENV: &str = "IMC_FAULT_EXIT_AFTER_CELLS";

fn sweep_error(what: impl Into<String>) -> Error {
    Error::Sweep { what: what.into() }
}

fn io_error(what: impl Into<String>) -> Error {
    Error::Io { what: what.into() }
}

// ---------------------------------------------------------------------------
// Configuration, events, report.
// ---------------------------------------------------------------------------

/// A [`SweepEvent`] callback installed with [`SweepConfig::observer`].
type Observer = Box<dyn Fn(&SweepEvent) + Send + Sync>;

/// Configuration of a [`sweep`] run.
pub struct SweepConfig {
    worker_program: PathBuf,
    workers: usize,
    chunk_cells: usize,
    max_attempts: u32,
    chunk_timeout: Duration,
    retry_backoff: Duration,
    worker_parallelism: usize,
    inject_fault_after_cells: Option<usize>,
    observer: Option<Observer>,
}

impl SweepConfig {
    /// Defaults: this executable as the worker program, 2 workers, 8 cells
    /// per chunk, 3 attempts per chunk, a 600 s per-chunk timeout, 200 ms
    /// base retry backoff, worker parallelism 1.
    pub fn new() -> Self {
        SweepConfig {
            worker_program: std::env::current_exe().unwrap_or_else(|_| PathBuf::from("imc")),
            workers: 2,
            chunk_cells: 8,
            max_attempts: 3,
            chunk_timeout: Duration::from_secs(600),
            retry_backoff: Duration::from_millis(200),
            worker_parallelism: 1,
            inject_fault_after_cells: None,
            observer: None,
        }
    }

    /// The binary spawned per chunk as `<program> run <spec> --cells A..B
    /// --out <shard>`; defaults to the current executable.
    pub fn worker_program(mut self, program: impl Into<PathBuf>) -> Self {
        self.worker_program = program.into();
        self
    }

    /// Number of worker processes kept in flight.
    pub fn workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }

    /// Cells per chunk: the unit of leasing, retry and loss.
    pub fn chunk_cells(mut self, cells: usize) -> Self {
        self.chunk_cells = cells.max(1);
        self
    }

    /// Launch budget per chunk (first attempt included) before its cells
    /// are declared unrecoverable.
    pub fn max_attempts(mut self, attempts: u32) -> Self {
        self.max_attempts = attempts.max(1);
        self
    }

    /// Per-chunk wall-clock budget; a worker exceeding it is killed and
    /// handled like any other dead worker.
    pub fn chunk_timeout(mut self, timeout: Duration) -> Self {
        self.chunk_timeout = timeout;
        self
    }

    /// Base backoff before relaunching a failed chunk; attempt `n` waits
    /// `base * 2^(n-1)`.
    pub fn retry_backoff(mut self, backoff: Duration) -> Self {
        self.retry_backoff = backoff;
        self
    }

    /// `--parallelism` passed to every worker (an execution knob — it never
    /// enters the run manifest, so it cannot break byte-identity). Defaults
    /// to 1: process-level parallelism comes from [`SweepConfig::workers`].
    pub fn worker_parallelism(mut self, threads: usize) -> Self {
        self.worker_parallelism = threads.max(1);
        self
    }

    /// Test/CI hook: injects [`FAULT_ENV`]`=k` into the **first** attempt
    /// of every chunk, so each chunk's first worker dies mid-shard and the
    /// retry path has to heal it.
    pub fn inject_fault_after_cells(mut self, cells: usize) -> Self {
        self.inject_fault_after_cells = Some(cells);
        self
    }

    /// Observer called (on the orchestrator thread) for every
    /// [`SweepEvent`]; the CLI uses it for progress lines, tests for
    /// capturing worker PIDs to `kill -9`.
    pub fn observer(mut self, observer: impl Fn(&SweepEvent) + Send + Sync + 'static) -> Self {
        self.observer = Some(Box::new(observer));
        self
    }

    fn emit(&self, event: SweepEvent) {
        if let Some(observer) = &self.observer {
            observer(&event);
        }
    }
}

impl Default for SweepConfig {
    fn default() -> Self {
        Self::new()
    }
}

impl core::fmt::Debug for SweepConfig {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("SweepConfig")
            .field("worker_program", &self.worker_program)
            .field("workers", &self.workers)
            .field("chunk_cells", &self.chunk_cells)
            .field("max_attempts", &self.max_attempts)
            .field("chunk_timeout", &self.chunk_timeout)
            .field("retry_backoff", &self.retry_backoff)
            .field("worker_parallelism", &self.worker_parallelism)
            .field("inject_fault_after_cells", &self.inject_fault_after_cells)
            .field("observer", &self.observer.is_some())
            .finish()
    }
}

/// Progress events emitted to the [`SweepConfig::observer`].
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SweepEvent {
    /// A worker process was spawned for a chunk.
    WorkerSpawned {
        /// Ledger index of the chunk.
        chunk: usize,
        /// Cell range of the chunk.
        cells: Range<usize>,
        /// 1-based launch count for the chunk.
        attempt: u32,
        /// OS process id of the worker.
        pid: u32,
    },
    /// A chunk's shard completed and validated.
    ChunkDone {
        /// Ledger index of the chunk.
        chunk: usize,
        /// Cell range of the chunk.
        cells: Range<usize>,
    },
    /// A worker died (signal, timeout, transient failure, or invalid
    /// output).
    WorkerDied {
        /// Ledger index of the chunk.
        chunk: usize,
        /// Cell range of the chunk.
        cells: Range<usize>,
        /// 1-based launch count that died.
        attempt: u32,
        /// What happened, including any worker stderr.
        reason: String,
        /// Whether the chunk will be relaunched (false: retry budget
        /// exhausted).
        retrying: bool,
    },
    /// The complete prefix of a dead worker's shard was salvaged into a
    /// done shard; only the missing tail will be re-run.
    ChunkSalvaged {
        /// Ledger index of the chunk that now covers the salvaged range.
        chunk: usize,
        /// Cells rescued from the partial shard.
        recovered: Range<usize>,
        /// Cells re-queued as a new pending chunk.
        missing: Range<usize>,
    },
    /// A resumed sweep reconciled the ledger against the shards on disk.
    Resumed {
        /// Chunks already complete.
        done: usize,
        /// Chunks still to run (salvage remainders included).
        pending: usize,
    },
}

/// Summary of a completed [`sweep`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SweepReport {
    /// The global cell range the sweep covered.
    pub cells: Range<usize>,
    /// Chunks in the final ledger (salvage splits included).
    pub chunks: usize,
    /// Records in the merged output.
    pub records: usize,
    /// Worker processes launched by *this* orchestrator run.
    pub workers_spawned: usize,
    /// Worker deaths observed (signals, timeouts, transient failures).
    pub worker_failures: usize,
    /// Partial shards whose prefix was salvaged instead of re-run.
    pub chunks_salvaged: usize,
}

// ---------------------------------------------------------------------------
// The state ledger.
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ChunkStatus {
    Pending,
    Leased,
    Done,
}

impl ChunkStatus {
    fn tag(self) -> &'static str {
        match self {
            ChunkStatus::Pending => "pending",
            ChunkStatus::Leased => "leased",
            ChunkStatus::Done => "done",
        }
    }

    fn from_tag(tag: &str) -> Result<Self> {
        match tag {
            "pending" => Ok(ChunkStatus::Pending),
            "leased" => Ok(ChunkStatus::Leased),
            "done" => Ok(ChunkStatus::Done),
            other => Err(sweep_error(format!("unknown chunk status '{other}'"))),
        }
    }
}

#[derive(Debug, Clone, PartialEq, Eq)]
struct ChunkState {
    cells: Range<usize>,
    status: ChunkStatus,
    attempts: u32,
    shard: String,
}

#[derive(Debug, Clone, PartialEq, Eq)]
struct SweepState {
    spec_hash: u64,
    cells: Range<usize>,
    chunks: Vec<ChunkState>,
}

fn range_value(range: &Range<usize>) -> JsonValue {
    JsonValue::Object(vec![
        ("start".to_owned(), JsonValue::integer(range.start as u64)),
        ("end".to_owned(), JsonValue::integer(range.end as u64)),
    ])
}

fn range_member(value: &JsonValue, key: &str) -> Result<Range<usize>> {
    let range = value
        .get(key)
        .ok_or_else(|| sweep_error(format!("state file: missing field '{key}'")))?;
    let bound = |bound: &str| {
        range
            .get(bound)
            .and_then(JsonValue::as_usize)
            .ok_or_else(|| {
                sweep_error(format!(
                    "state file: '{key}.{bound}' is not a non-negative integer"
                ))
            })
    };
    Ok(bound("start")?..bound("end")?)
}

impl SweepState {
    /// Partitions `cells` into `chunk_cells`-sized pending chunks.
    fn fresh(spec_hash: u64, cells: Range<usize>, chunk_cells: usize) -> SweepState {
        let mut chunks = Vec::new();
        let mut start = cells.start;
        while start < cells.end {
            let end = (start + chunk_cells).min(cells.end);
            chunks.push(ChunkState {
                cells: start..end,
                status: ChunkStatus::Pending,
                attempts: 0,
                shard: format!("chunk_{}.jsonl", chunks.len()),
            });
            start = end;
        }
        SweepState {
            spec_hash,
            cells,
            chunks,
        }
    }

    fn to_json(&self) -> String {
        let chunks: Vec<JsonValue> = self
            .chunks
            .iter()
            .map(|chunk| {
                JsonValue::Object(vec![
                    ("cells".to_owned(), range_value(&chunk.cells)),
                    ("status".to_owned(), JsonValue::string(chunk.status.tag())),
                    (
                        "attempts".to_owned(),
                        JsonValue::integer(u64::from(chunk.attempts)),
                    ),
                    ("shard".to_owned(), JsonValue::string(chunk.shard.as_str())),
                ])
            })
            .collect();
        JsonValue::Object(vec![
            ("format".to_owned(), JsonValue::string(SWEEP_STATE_FORMAT)),
            (
                "version".to_owned(),
                JsonValue::integer(SWEEP_STATE_VERSION),
            ),
            (
                "spec_hash".to_owned(),
                JsonValue::string(format!("{:016x}", self.spec_hash)),
            ),
            ("cells".to_owned(), range_value(&self.cells)),
            ("chunks".to_owned(), JsonValue::Array(chunks)),
        ])
        .to_json()
    }

    fn parse(text: &str) -> Result<SweepState> {
        let value = JsonValue::parse(text)
            .map_err(|e| sweep_error(format!("state file is not valid JSON: {e}")))?;
        let format = value
            .get("format")
            .and_then(JsonValue::as_str)
            .ok_or_else(|| sweep_error("state file: missing 'format'"))?;
        if format != SWEEP_STATE_FORMAT {
            return Err(sweep_error(format!(
                "state file has format '{format}' (expected '{SWEEP_STATE_FORMAT}')"
            )));
        }
        let version = value
            .get("version")
            .and_then(JsonValue::as_u64)
            .ok_or_else(|| sweep_error("state file: missing 'version'"))?;
        if version != SWEEP_STATE_VERSION {
            return Err(sweep_error(format!(
                "unsupported state version {version} (this orchestrator understands version {SWEEP_STATE_VERSION})"
            )));
        }
        let spec_hash = value
            .get("spec_hash")
            .and_then(JsonValue::as_str)
            .and_then(|hex| u64::from_str_radix(hex, 16).ok())
            .ok_or_else(|| sweep_error("state file: 'spec_hash' is not a hex hash"))?;
        let cells = range_member(&value, "cells")?;
        let chunks = value
            .get("chunks")
            .and_then(JsonValue::as_array)
            .ok_or_else(|| sweep_error("state file: missing 'chunks' array"))?
            .iter()
            .map(|chunk| {
                Ok(ChunkState {
                    cells: range_member(chunk, "cells")?,
                    status: ChunkStatus::from_tag(
                        chunk
                            .get("status")
                            .and_then(JsonValue::as_str)
                            .ok_or_else(|| sweep_error("state file: chunk missing 'status'"))?,
                    )?,
                    attempts: chunk
                        .get("attempts")
                        .and_then(JsonValue::as_u64)
                        .ok_or_else(|| sweep_error("state file: chunk missing 'attempts'"))?
                        as u32,
                    shard: chunk
                        .get("shard")
                        .and_then(JsonValue::as_str)
                        .ok_or_else(|| sweep_error("state file: chunk missing 'shard'"))?
                        .to_owned(),
                })
            })
            .collect::<Result<Vec<_>>>()?;
        Ok(SweepState {
            spec_hash,
            cells,
            chunks,
        })
    }

    /// Persists the ledger atomically: temp file, fsync, rename — a crash
    /// at any point leaves either the old or the new ledger, never a torn
    /// one.
    fn save(&self, dir: &Path) -> Result<()> {
        let tmp = dir.join(format!("{STATE_FILE}.tmp"));
        let target = dir.join(STATE_FILE);
        let mut file = std::fs::File::create(&tmp)
            .map_err(|e| io_error(format!("could not create {}: {e}", tmp.display())))?;
        file.write_all(self.to_json().as_bytes())
            .and_then(|()| file.sync_all())
            .map_err(|e| io_error(format!("could not write {}: {e}", tmp.display())))?;
        drop(file);
        std::fs::rename(&tmp, &target)
            .map_err(|e| io_error(format!("could not commit {}: {e}", target.display())))?;
        // Best-effort directory fsync so the rename itself is durable.
        if let Ok(dir_handle) = std::fs::File::open(dir) {
            let _ = dir_handle.sync_all();
        }
        Ok(())
    }

    fn load(path: &Path) -> Result<SweepState> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| io_error(format!("could not read {}: {e}", path.display())))?;
        Self::parse(&text)
    }
}

// ---------------------------------------------------------------------------
// Salvage: turning a dead worker's partial shard into a resume point.
// ---------------------------------------------------------------------------

/// Reconciles chunk `index` against its shard file on disk: a complete,
/// valid shard marks the chunk done; a partial shard with a usable prefix
/// is rewritten as a smaller done shard plus a new pending chunk for the
/// missing tail; anything else resets the chunk to pending. Returns the
/// ledger index of the chunk that still needs running, if any.
fn salvage_chunk(
    state: &mut SweepState,
    index: usize,
    dir: &Path,
    config: &SweepConfig,
    report: &mut SweepReport,
) -> Result<Option<usize>> {
    let chunk_cells = state.chunks[index].cells.clone();
    let shard_path = dir.join(&state.chunks[index].shard);
    let Ok(text) = std::fs::read_to_string(&shard_path) else {
        // No shard at all (worker died before the header): rerun whole.
        state.chunks[index].status = ChunkStatus::Pending;
        return Ok(Some(index));
    };
    let Ok(recovered) = ExperimentRun::from_jsonl_partial(&text) else {
        // Torn header or worse: nothing trustworthy, rerun whole.
        state.chunks[index].status = ChunkStatus::Pending;
        return Ok(Some(index));
    };
    if recovered.is_complete() && recovered.covered == Some(chunk_cells.clone()) {
        // The worker finished its shard; only the done-transition was lost.
        state.chunks[index].status = ChunkStatus::Done;
        return Ok(None);
    }
    match recovered.covered {
        Some(covered) if covered.start == chunk_cells.start && covered.end < chunk_cells.end => {
            // A usable prefix: rewrite it as a valid shard of its own (with
            // an honest manifest range) and queue only the missing tail.
            let mut manifest = recovered.run.manifest().cloned();
            if let Some(manifest) = &mut manifest {
                manifest.cells = covered.clone();
            }
            let salvaged = ExperimentRun::new(recovered.run.records().to_vec(), manifest);
            let salvage_name = format!("salvage_{}_{}.jsonl", covered.start, covered.end);
            salvaged.save_jsonl(dir.join(&salvage_name))?;
            let missing = covered.end..chunk_cells.end;
            let attempts = state.chunks[index].attempts;
            state.chunks[index] = ChunkState {
                cells: covered.clone(),
                status: ChunkStatus::Done,
                attempts,
                shard: salvage_name,
            };
            let remainder_index = state.chunks.len();
            state.chunks.push(ChunkState {
                cells: missing.clone(),
                status: ChunkStatus::Pending,
                attempts,
                shard: format!("chunk_{remainder_index}.jsonl"),
            });
            report.chunks_salvaged += 1;
            config.emit(SweepEvent::ChunkSalvaged {
                chunk: index,
                recovered: covered,
                missing,
            });
            Ok(Some(remainder_index))
        }
        _ => {
            // Empty, non-contiguous, or not starting at the chunk's first
            // cell: refuse to guess, rerun the whole chunk.
            state.chunks[index].status = ChunkStatus::Pending;
            Ok(Some(index))
        }
    }
}

// ---------------------------------------------------------------------------
// The orchestrator.
// ---------------------------------------------------------------------------

struct Running {
    chunk: usize,
    child: Child,
    started: Instant,
}

fn kill_all(running: &mut Vec<Running>) {
    for worker in running.iter_mut() {
        let _ = worker.child.kill();
        let _ = worker.child.wait();
    }
    running.clear();
}

fn stderr_excerpt(child: &mut Child) -> String {
    let mut text = String::new();
    if let Some(mut stderr) = child.stderr.take() {
        let _ = stderr.read_to_string(&mut text);
    }
    let trimmed = text.trim();
    let mut excerpt: String = trimmed.chars().take(300).collect();
    if excerpt.len() < trimmed.len() {
        excerpt.push('…');
    }
    excerpt
}

/// What a worker's exit means for its chunk.
enum Disposition {
    /// Exit 0: validate the shard and mark the chunk done.
    Success,
    /// Signal death, timeout, or transient I/O (exit code 4): salvage and
    /// retry within the attempt budget.
    Retryable(String),
    /// Exit codes 1–3: the spec/evaluation will fail identically on every
    /// retry, so the whole sweep aborts.
    Permanent(String),
}

fn classify_exit(status: std::process::ExitStatus) -> Disposition {
    match status.code() {
        Some(0) => Disposition::Success,
        None => Disposition::Retryable(format!("worker died ({status})")),
        Some(4) => {
            Disposition::Retryable("worker hit a transient I/O failure (exit code 4)".into())
        }
        Some(code) => {
            Disposition::Permanent(format!("worker failed permanently (exit code {code})"))
        }
    }
}

/// Strict validation of a finished shard: loads it and checks it covers
/// exactly the chunk's cell range.
fn validate_shard(path: &Path, cells: &Range<usize>) -> Result<()> {
    let run = ExperimentRun::load_jsonl(path)?;
    if run.records().len() != cells.len()
        || !run
            .records()
            .iter()
            .enumerate()
            .all(|(i, record)| record.cell_index == cells.start + i)
    {
        return Err(sweep_error(format!(
            "shard {} does not cover cells {}..{}",
            path.display(),
            cells.start,
            cells.end
        )));
    }
    Ok(())
}

/// Runs `spec_json`'s cell grid to completion across worker processes and
/// merges the shards into `out`, byte-identical to an unsharded `imc run`
/// of the same spec.
///
/// `dir` is the working directory: the spec copy, the shard files and the
/// [`STATE_FILE`] ledger live there. With `resume = false` the directory
/// must not already hold a ledger; with `resume = true` an existing ledger
/// is reconciled against the shards on disk (salvaging partial ones) and
/// only missing cells are re-leased. A resume also resets each pending
/// chunk's attempt count — resuming is an explicit decision to try again.
///
/// # Errors
///
/// Returns [`Error::Spec`] for an invalid spec or cell range,
/// [`Error::Sweep`] for ledger mismatches (stale state for a different
/// spec), permanent worker failures, or cells left unrecoverable after the
/// retry budget, and [`Error::Io`] for filesystem/process failures.
pub fn sweep(
    spec_json: &str,
    dir: &Path,
    out: &Path,
    resume: bool,
    config: &SweepConfig,
) -> Result<SweepReport> {
    let spec = ExperimentSpec::from_json(spec_json)?;
    if spec.frontier {
        return Err(Error::Spec {
            what: "a frontier spec cannot be swept: the sweep shards the grid into fixed cell \
                   ranges, but a frontier search chooses its cells adaptively (run it with \
                   `imc run` instead)"
                .to_owned(),
        });
    }
    let grid = spec.networks.len() * spec.arrays.len() * spec.strategies.len();
    let cells = spec.cells.clone().unwrap_or(0..grid);
    if cells.start >= cells.end || cells.end > grid {
        return Err(Error::Spec {
            what: format!(
                "cell range {}..{} is empty or exceeds the {grid}-cell grid",
                cells.start, cells.end
            ),
        });
    }
    let spec_hash = spec.content_hash();

    std::fs::create_dir_all(dir)
        .map_err(|e| io_error(format!("could not create {}: {e}", dir.display())))?;
    let state_path = dir.join(STATE_FILE);

    let mut report = SweepReport {
        cells: cells.clone(),
        chunks: 0,
        records: 0,
        workers_spawned: 0,
        worker_failures: 0,
        chunks_salvaged: 0,
    };

    let mut state = if resume {
        let state = SweepState::load(&state_path)?;
        if state.spec_hash != spec_hash {
            return Err(sweep_error(format!(
                "{} was written for spec hash {:016x}, but this spec hashes to {spec_hash:016x} — \
                 refusing to resume a different experiment",
                state_path.display(),
                state.spec_hash
            )));
        }
        if state.cells != cells {
            return Err(sweep_error(format!(
                "{} covers cells {}..{}, but this spec sweeps {}..{}",
                state_path.display(),
                state.cells.start,
                state.cells.end,
                cells.start,
                cells.end
            )));
        }
        state
    } else {
        if state_path.exists() {
            return Err(sweep_error(format!(
                "{} already exists — resume the sweep, or remove the directory to start over",
                state_path.display()
            )));
        }
        SweepState::fresh(spec_hash, cells.clone(), config.chunk_cells)
    };

    let spec_path = dir.join(SPEC_FILE);
    std::fs::write(&spec_path, spec_json)
        .map_err(|e| io_error(format!("could not write {}: {e}", spec_path.display())))?;

    if resume {
        // Reconcile the ledger against what actually reached disk: done
        // shards are re-validated, leased/pending ones salvaged.
        for index in 0..state.chunks.len() {
            let chunk = state.chunks[index].clone();
            match chunk.status {
                ChunkStatus::Done => {
                    if validate_shard(&dir.join(&chunk.shard), &chunk.cells).is_err() {
                        salvage_chunk(&mut state, index, dir, config, &mut report)?;
                    }
                }
                ChunkStatus::Leased | ChunkStatus::Pending => {
                    salvage_chunk(&mut state, index, dir, config, &mut report)?;
                }
            }
        }
        for chunk in &mut state.chunks {
            if chunk.status != ChunkStatus::Done {
                chunk.attempts = 0;
            }
        }
        let done = state
            .chunks
            .iter()
            .filter(|c| c.status == ChunkStatus::Done)
            .count();
        config.emit(SweepEvent::Resumed {
            done,
            pending: state.chunks.len() - done,
        });
    }
    state.save(dir)?;

    let mut running: Vec<Running> = Vec::new();
    let mut eligible_at: HashMap<usize, Instant> = HashMap::new();
    let mut dead: Vec<(usize, String)> = Vec::new();

    let outcome = loop {
        // 1. Reap exited and timed-out workers.
        let mut finished: Vec<(Running, std::process::ExitStatus, bool)> = Vec::new();
        let mut poll_error: Option<Error> = None;
        let mut index = 0;
        while index < running.len() {
            match running[index].child.try_wait() {
                Ok(Some(status)) => {
                    finished.push((running.swap_remove(index), status, false));
                }
                Ok(None) if running[index].started.elapsed() > config.chunk_timeout => {
                    let mut worker = running.swap_remove(index);
                    let _ = worker.child.kill();
                    match worker.child.wait() {
                        Ok(status) => finished.push((worker, status, true)),
                        Err(e) => {
                            poll_error = Some(io_error(format!("could not reap worker: {e}")));
                            break;
                        }
                    }
                }
                Ok(None) => index += 1,
                Err(e) => {
                    poll_error = Some(io_error(format!("could not poll worker: {e}")));
                    break;
                }
            }
        }
        if let Some(e) = poll_error {
            break Err(e);
        }

        // 2. Handle every exit.
        let mut fatal = None;
        for (mut worker, status, timed_out) in finished {
            let chunk_index = worker.chunk;
            let cells = state.chunks[chunk_index].cells.clone();
            let attempt = state.chunks[chunk_index].attempts;
            let disposition = if timed_out {
                Disposition::Retryable(format!(
                    "worker exceeded the {}s chunk timeout and was killed",
                    config.chunk_timeout.as_secs()
                ))
            } else {
                classify_exit(status)
            };
            let failure = match disposition {
                Disposition::Success => {
                    let shard_path = dir.join(&state.chunks[chunk_index].shard);
                    match validate_shard(&shard_path, &cells) {
                        Ok(()) => {
                            state.chunks[chunk_index].status = ChunkStatus::Done;
                            state.save(dir)?;
                            config.emit(SweepEvent::ChunkDone {
                                chunk: chunk_index,
                                cells,
                            });
                            continue;
                        }
                        Err(e) => format!("worker exited cleanly but its shard is invalid: {e}"),
                    }
                }
                Disposition::Retryable(reason) => {
                    let stderr = stderr_excerpt(&mut worker.child);
                    if stderr.is_empty() {
                        reason
                    } else {
                        format!("{reason}: {stderr}")
                    }
                }
                Disposition::Permanent(reason) => {
                    let stderr = stderr_excerpt(&mut worker.child);
                    let detail = if stderr.is_empty() {
                        reason
                    } else {
                        format!("{reason}: {stderr}")
                    };
                    fatal = Some(sweep_error(format!(
                        "cells {}..{}: {detail} — this spec will fail identically on every retry",
                        cells.start, cells.end
                    )));
                    break;
                }
            };
            report.worker_failures += 1;
            let pending = salvage_chunk(&mut state, chunk_index, dir, config, &mut report)?;
            if let Some(pending_index) = pending {
                let attempts = state.chunks[pending_index].attempts;
                let retrying = attempts < config.max_attempts;
                if retrying {
                    let backoff = config
                        .retry_backoff
                        .saturating_mul(1u32 << (attempts.max(1) - 1).min(16));
                    eligible_at.insert(pending_index, Instant::now() + backoff);
                } else {
                    dead.push((pending_index, failure.clone()));
                }
                config.emit(SweepEvent::WorkerDied {
                    chunk: chunk_index,
                    cells,
                    attempt,
                    reason: failure,
                    retrying,
                });
            } else {
                // Salvage found the shard complete after all.
                config.emit(SweepEvent::WorkerDied {
                    chunk: chunk_index,
                    cells: cells.clone(),
                    attempt,
                    reason: failure,
                    retrying: false,
                });
                config.emit(SweepEvent::ChunkDone {
                    chunk: chunk_index,
                    cells,
                });
            }
            state.save(dir)?;
        }
        if let Some(e) = fatal {
            break Err(e);
        }

        // 3. Lease pending chunks onto free workers.
        while running.len() < config.workers {
            let now = Instant::now();
            let next = state.chunks.iter().enumerate().position(|(i, chunk)| {
                chunk.status == ChunkStatus::Pending
                    && !dead.iter().any(|(d, _)| *d == i)
                    && eligible_at.get(&i).is_none_or(|&at| now >= at)
            });
            let Some(chunk_index) = next else { break };
            state.chunks[chunk_index].status = ChunkStatus::Leased;
            state.chunks[chunk_index].attempts += 1;
            state.save(dir)?;
            let chunk = state.chunks[chunk_index].clone();
            let mut command = Command::new(&config.worker_program);
            command
                .arg("run")
                .arg(&spec_path)
                .arg("--cells")
                .arg(format!("{}..{}", chunk.cells.start, chunk.cells.end))
                .arg("--out")
                .arg(dir.join(&chunk.shard))
                .arg("--parallelism")
                .arg(config.worker_parallelism.to_string())
                .stdin(Stdio::null())
                .stdout(Stdio::null())
                .stderr(Stdio::piped())
                .env_remove(FAULT_ENV);
            if let Some(k) = config.inject_fault_after_cells {
                if chunk.attempts == 1 {
                    command.env(FAULT_ENV, k.to_string());
                }
            }
            let child = match command.spawn() {
                Ok(child) => child,
                Err(e) => {
                    kill_all(&mut running);
                    return Err(io_error(format!(
                        "could not spawn worker {}: {e}",
                        config.worker_program.display()
                    )));
                }
            };
            report.workers_spawned += 1;
            config.emit(SweepEvent::WorkerSpawned {
                chunk: chunk_index,
                cells: chunk.cells.clone(),
                attempt: chunk.attempts,
                pid: child.id(),
            });
            running.push(Running {
                chunk: chunk_index,
                child,
                started: Instant::now(),
            });
        }

        // 4. Termination.
        if running.is_empty() {
            if state.chunks.iter().all(|c| c.status == ChunkStatus::Done) {
                break Ok(());
            }
            let waiting = state.chunks.iter().enumerate().any(|(i, chunk)| {
                chunk.status == ChunkStatus::Pending && !dead.iter().any(|(d, _)| *d == i)
            });
            if !waiting {
                let mut lost: Vec<String> = dead
                    .iter()
                    .map(|(i, reason)| {
                        let cells = &state.chunks[*i].cells;
                        format!("{}..{} ({reason})", cells.start, cells.end)
                    })
                    .collect();
                lost.sort();
                break Err(sweep_error(format!(
                    "cells unrecoverable after {} attempts: {} — fix the cause and resume",
                    config.max_attempts,
                    lost.join(", ")
                )));
            }
        }
        std::thread::sleep(Duration::from_millis(15));
    };

    if let Err(e) = outcome {
        kill_all(&mut running);
        state.save(dir)?;
        return Err(e);
    }

    // 5. Streaming merge of the done shards into the final run.
    let mut done: Vec<&ChunkState> = state.chunks.iter().collect();
    done.sort_by_key(|chunk| chunk.cells.start);
    let shards: Vec<PathBuf> = done.iter().map(|chunk| dir.join(&chunk.shard)).collect();
    report.records = stream_merge(&shards, out)?;
    report.chunks = state.chunks.len();
    if report.records != cells.len() {
        return Err(sweep_error(format!(
            "merged {} records but the sweep covers {} cells",
            report.records,
            cells.len()
        )));
    }
    Ok(report)
}

// ---------------------------------------------------------------------------
// Streaming merge.
// ---------------------------------------------------------------------------

struct ShardReader {
    path: PathBuf,
    lines: std::io::Lines<BufReader<std::fs::File>>,
    declared: usize,
    taken: usize,
    last_cell: Option<usize>,
    head: Option<RunRecord>,
}

impl ShardReader {
    fn next_line(&mut self) -> Result<Option<String>> {
        for line in self.lines.by_ref() {
            let line =
                line.map_err(|e| io_error(format!("could not read {}: {e}", self.path.display())))?;
            if !line.trim().is_empty() {
                return Ok(Some(line));
            }
        }
        Ok(None)
    }

    fn advance(&mut self) -> Result<()> {
        if self.taken == self.declared {
            if self.next_line()?.is_some() {
                return Err(Error::Record {
                    what: format!(
                        "{}: more record lines than the declared {} records",
                        self.path.display(),
                        self.declared
                    ),
                });
            }
            self.head = None;
            return Ok(());
        }
        let line = self.next_line()?.ok_or_else(|| Error::Record {
            what: format!(
                "{}: header declares {} records but only {} lines follow (truncated shard file?)",
                self.path.display(),
                self.declared,
                self.taken
            ),
        })?;
        let record = RunRecord::from_json_line(&line)?;
        if let Some(last) = self.last_cell {
            if record.cell_index <= last {
                return Err(Error::Record {
                    what: format!(
                        "{} is not sorted by cell index (cell {} after cell {last})",
                        self.path.display(),
                        record.cell_index
                    ),
                });
            }
        }
        self.last_cell = Some(record.cell_index);
        self.head = Some(record);
        self.taken += 1;
        Ok(())
    }
}

/// Merges shard files into `out` with a streaming k-way merge on
/// `cell_index`, holding one parsed record per shard in memory instead of
/// materializing the full run — and emitting bytes identical to loading
/// every shard and serializing [`ExperimentRun::merge`]. Returns the
/// number of records written.
///
/// Each shard must be internally sorted by cell index (`imc run --cells`
/// always writes them that way); overlapping shards are rejected with the
/// same duplicate-cell error as the in-memory merge.
///
/// # Errors
///
/// Returns [`Error::Record`] for malformed, truncated, unsorted or
/// overlapping shards (and manifests of different experiments), and
/// [`Error::Io`] on filesystem failure.
pub fn stream_merge(shards: &[PathBuf], out: &Path) -> Result<usize> {
    let mut readers = Vec::with_capacity(shards.len());
    let mut present = Vec::new();
    let mut missing = false;
    for path in shards {
        let file = std::fs::File::open(path)
            .map_err(|e| io_error(format!("could not open {}: {e}", path.display())))?;
        let mut reader = ShardReader {
            path: path.clone(),
            lines: BufReader::new(file).lines(),
            declared: 0,
            taken: 0,
            last_cell: None,
            head: None,
        };
        let header_line = reader.next_line()?.ok_or_else(|| Error::Record {
            what: format!("{}: empty input: expected a header line", path.display()),
        })?;
        let header = parse_run_header(&header_line)?;
        reader.declared = header.declared;
        match header.manifest {
            Some(manifest) => present.push(manifest),
            None => missing = true,
        }
        reader.advance()?;
        readers.push(reader);
    }
    // Same manifest policy as `ExperimentRun::merge`: cross-check every
    // manifest that exists, keep a merged one only when all shards carried
    // one.
    let manifest = if present.is_empty() {
        None
    } else {
        let merged = ExperimentRun::merge_manifests(&present)?;
        if missing {
            None
        } else {
            merged
        }
    };

    let total: usize = readers.iter().map(|r| r.declared).sum();
    let file = std::fs::File::create(out)
        .map_err(|e| io_error(format!("could not create {}: {e}", out.display())))?;
    let mut writer = BufWriter::new(file);
    let mut header = run_header_json(total, manifest.as_ref());
    header.push('\n');
    writer
        .write_all(header.as_bytes())
        .map_err(|e| io_error(format!("could not write {}: {e}", out.display())))?;

    for _ in 0..total {
        let mut best: Option<(usize, usize)> = None;
        for (i, reader) in readers.iter().enumerate() {
            let Some(cell) = reader.head.as_ref().map(|r| r.cell_index) else {
                continue;
            };
            match best {
                None => best = Some((i, cell)),
                Some((_, best_cell)) if cell == best_cell => {
                    return Err(Error::Record {
                        what: format!(
                            "duplicate cell index {cell} across shards (overlapping cell ranges?)"
                        ),
                    });
                }
                Some((_, best_cell)) if cell < best_cell => best = Some((i, cell)),
                Some(_) => {}
            }
        }
        let (index, _) = best.expect("total equals the records remaining across readers");
        let record = readers[index].head.take().expect("best reader has a head");
        readers[index].advance()?;
        let mut line = record.to_json_line()?;
        line.push('\n');
        writer
            .write_all(line.as_bytes())
            .map_err(|e| io_error(format!("could not write {}: {e}", out.display())))?;
    }
    let file = writer
        .into_inner()
        .map_err(|e| io_error(format!("could not flush {}: {e}", out.display())))?;
    file.sync_all()
        .map_err(|e| io_error(format!("could not sync {}: {e}", out.display())))?;
    Ok(total)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::Experiment;
    use crate::experiments::DEFAULT_SEED;
    use crate::network::CompressionMethod;
    use imc_nn::resnet20;

    fn grid() -> Experiment {
        Experiment::new()
            .network(resnet20())
            .arrays([32, 64])
            .seed(DEFAULT_SEED)
            .method(CompressionMethod::Uncompressed { sdk: false })
            .method(CompressionMethod::PatternPruning { entries: 4 })
    }

    fn temp_dir(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("imc_sweep_unit_{name}_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn state_ledger_round_trips_and_partitions_the_grid() {
        let state = SweepState::fresh(0xdead_beef_cafe_f00d, 3..33, 8);
        let spans: Vec<Range<usize>> = state.chunks.iter().map(|c| c.cells.clone()).collect();
        assert_eq!(spans, vec![3..11, 11..19, 19..27, 27..33]);
        assert!(state
            .chunks
            .iter()
            .all(|c| c.status == ChunkStatus::Pending));

        let text = state.to_json();
        assert!(text.starts_with("{\"format\":\"imc.sweep-state\",\"version\":1"));
        assert_eq!(SweepState::parse(&text).unwrap(), state);

        // Unknown versions and formats are refused.
        let future = text.replacen("\"version\":1", "\"version\":2", 1);
        assert!(SweepState::parse(&future).is_err());
        let foreign = text.replacen(SWEEP_STATE_FORMAT, "something.else", 1);
        assert!(SweepState::parse(&foreign).is_err());
    }

    #[test]
    fn state_save_is_atomic_and_loadable() {
        let dir = temp_dir("state_save");
        let state = SweepState::fresh(7, 0..4, 2);
        state.save(&dir).unwrap();
        assert_eq!(SweepState::load(&dir.join(STATE_FILE)).unwrap(), state);
        assert!(
            !dir.join(format!("{STATE_FILE}.tmp")).exists(),
            "the temp file must be renamed away"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn resume_rejects_state_for_a_different_spec() {
        let dir = temp_dir("stale_state");
        // A ledger written for some other experiment (hash 0).
        SweepState::fresh(0, 0..4, 2).save(&dir).unwrap();
        let spec_json = grid().to_spec().unwrap().to_json();
        let err = sweep(
            &spec_json,
            &dir,
            &dir.join("out.jsonl"),
            true,
            &SweepConfig::new(),
        )
        .unwrap_err();
        assert!(matches!(err, Error::Sweep { .. }), "{err}");
        assert!(format!("{err}").contains("refusing to resume"), "{err}");

        // Without resume, an existing ledger refuses to be clobbered.
        let err = sweep(
            &spec_json,
            &dir,
            &dir.join("out.jsonl"),
            false,
            &SweepConfig::new(),
        )
        .unwrap_err();
        assert!(format!("{err}").contains("already exists"), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn frontier_specs_refuse_to_be_swept() {
        let dir = temp_dir("frontier_reject");
        let spec_json = grid().frontier_mode(true).to_spec().unwrap().to_json();
        let err = sweep(
            &spec_json,
            &dir,
            &dir.join("out.jsonl"),
            false,
            &SweepConfig::new(),
        )
        .unwrap_err();
        assert!(matches!(err, Error::Spec { .. }), "{err}");
        assert!(format!("{err}").contains("frontier"), "{err}");
        assert!(
            !dir.join(STATE_FILE).exists(),
            "the refusal must not leave a ledger behind"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn stream_merge_is_byte_identical_to_in_memory_merge() {
        let dir = temp_dir("stream_merge");
        let unsharded = grid().run().unwrap();
        let shard_a = grid().cells(0..1).run().unwrap();
        let shard_b = grid().cells(1..4).run().unwrap();
        let path_a = dir.join("a.jsonl");
        let path_b = dir.join("b.jsonl");
        shard_a.save_jsonl(&path_a).unwrap();
        shard_b.save_jsonl(&path_b).unwrap();

        // Shards given out of order still merge into canonical order.
        let out = dir.join("merged.jsonl");
        let written = stream_merge(&[path_b.clone(), path_a.clone()], &out).unwrap();
        assert_eq!(written, 4);
        let streamed = std::fs::read_to_string(&out).unwrap();
        let in_memory = ExperimentRun::merge([
            ExperimentRun::load_jsonl(&path_b).unwrap(),
            ExperimentRun::load_jsonl(&path_a).unwrap(),
        ])
        .unwrap();
        assert_eq!(streamed, in_memory.to_jsonl().unwrap());
        assert_eq!(
            streamed,
            unsharded.to_jsonl().unwrap(),
            "and to the unsharded run"
        );

        // A manifest-less shard in the mix drops the merged manifest, same
        // as the in-memory merge.
        let stripped = shard_a.to_jsonl().unwrap().replacen(
            &format!(
                ",\"manifest\":{}",
                shard_a.manifest().unwrap().to_header_json()
            ),
            "",
            1,
        );
        let path_c = dir.join("c.jsonl");
        std::fs::write(&path_c, &stripped).unwrap();
        stream_merge(&[path_c.clone(), path_b.clone()], &out).unwrap();
        let streamed = std::fs::read_to_string(&out).unwrap();
        let in_memory = ExperimentRun::merge([
            ExperimentRun::from_jsonl(&stripped).unwrap(),
            ExperimentRun::load_jsonl(&path_b).unwrap(),
        ])
        .unwrap();
        assert_eq!(streamed, in_memory.to_jsonl().unwrap());
        assert!(ExperimentRun::from_jsonl(&streamed)
            .unwrap()
            .manifest()
            .is_none());

        // Overlapping shards are rejected with the merge's error.
        let err = stream_merge(&[path_a.clone(), path_a.clone()], &out).unwrap_err();
        assert!(format!("{err}").contains("duplicate cell index"), "{err}");

        // An unsorted shard is rejected (the k-way merge requires it).
        let lines: Vec<&str> = streamed.lines().collect();
        let shuffled = format!("{}\n{}\n{}\n", lines[0], lines[2], lines[1]);
        let shuffled = shuffled.replacen("\"records\":4", "\"records\":2", 1);
        let path_d = dir.join("d.jsonl");
        std::fs::write(&path_d, shuffled).unwrap();
        let err = stream_merge(&[path_d], &out).unwrap_err();
        assert!(format!("{err}").contains("not sorted"), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn salvage_splits_a_torn_shard_into_done_plus_pending() {
        let dir = temp_dir("salvage");
        let shard = grid().cells(0..3).run().unwrap();
        let text = shard.to_jsonl().unwrap();
        // Tear the last record line in half, as a killed worker would.
        let lines: Vec<&str> = text.lines().collect();
        let mut torn: String = lines[..3].iter().map(|l| format!("{l}\n")).collect();
        torn.push_str(&lines[3][..lines[3].len() / 2]);
        std::fs::write(dir.join("chunk_0.jsonl"), &torn).unwrap();

        let mut state = SweepState::fresh(shard.manifest().unwrap().spec_hash, 0..4, 3);
        assert_eq!(state.chunks.len(), 2);
        let config = SweepConfig::new();
        let mut report = SweepReport {
            cells: 0..4,
            chunks: 0,
            records: 0,
            workers_spawned: 0,
            worker_failures: 0,
            chunks_salvaged: 0,
        };
        let pending = salvage_chunk(&mut state, 0, &dir, &config, &mut report)
            .unwrap()
            .expect("a remainder chunk is queued");
        assert_eq!(report.chunks_salvaged, 1);
        assert_eq!(state.chunks[0].status, ChunkStatus::Done);
        assert_eq!(state.chunks[0].cells, 0..2);
        assert_eq!(state.chunks[pending].cells, 2..3);
        assert_eq!(state.chunks[pending].status, ChunkStatus::Pending);

        // The salvaged shard is strictly valid and honestly ranged.
        let salvaged = ExperimentRun::load_jsonl(dir.join(&state.chunks[0].shard)).unwrap();
        assert_eq!(salvaged.manifest().unwrap().cells, 0..2);
        assert_eq!(salvaged.records().len(), 2);
        std::fs::remove_dir_all(&dir).ok();
    }
}
