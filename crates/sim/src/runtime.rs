//! Dependency-free scoped work pool for embarrassingly parallel sweeps.
//!
//! The experiment grids are collections of independent cells (every cell is
//! seeded independently and shares no mutable state), so the scheduler can be
//! minimal: an atomic cursor hands out cell indices to a fixed set of scoped
//! worker threads, and each worker writes its result into the slot reserved
//! for that index. Results come back in **input order** regardless of which
//! worker computed them or in which order they finished, so a parallel run is
//! indistinguishable from a serial one.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex};

/// The number of workers a sweep uses when none is requested explicitly: one
/// per available hardware thread (falling back to 1 when the parallelism
/// cannot be queried).
pub fn default_parallelism() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// Runs `jobs` invocations of `job` (one per index in `0..jobs`) on up to
/// `workers` scoped threads, returning the results in index order.
///
/// With `workers <= 1` (or a single job) the jobs run inline on the calling
/// thread — the exact serial loop, with no thread machinery at all. Worker
/// threads claim indices from an atomic cursor, so scheduling is dynamic
/// (long and short cells interleave without static partitioning imbalance).
///
/// # Panics
///
/// Panics if `job` panics on any index (the panic is propagated when the
/// scope joins).
pub fn run_indexed<T, F>(workers: usize, jobs: usize, job: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let workers = workers.max(1).min(jobs);
    if workers <= 1 {
        return (0..jobs).map(&job).collect();
    }
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<T>>> = (0..jobs).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let index = next.fetch_add(1, Ordering::Relaxed);
                if index >= jobs {
                    break;
                }
                let result = job(index);
                *slots[index].lock().expect("result slot poisoned") = Some(result);
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result slot poisoned")
                .expect("every claimed index stores a result before the scope joins")
        })
        .collect()
}

/// Like [`run_indexed`], but delivers each result to `each` **in index
/// order as soon as it (and every earlier index) is available**, instead of
/// collecting everything first. This is what lets a sweep stream records to
/// disk while later cells are still computing: a worker killed mid-sweep
/// leaves every already-delivered record safely written.
///
/// `each(index, result)` runs on the calling thread; returning `false`
/// stops the run early (workers finish their in-flight job and claim no
/// more indices).
///
/// With `workers <= 1` (or a single job) everything runs inline on the
/// calling thread — the exact serial loop.
///
/// # Panics
///
/// Panics if `job` panics on any index. A worker panic is flagged to the
/// in-order consumer (so it never waits for a slot that will not be
/// filled), and the panic is propagated when the scope joins.
pub fn run_indexed_each<T, F, C>(workers: usize, jobs: usize, job: F, mut each: C)
where
    T: Send,
    F: Fn(usize) -> T + Sync,
    C: FnMut(usize, T) -> bool,
{
    let workers = workers.max(1).min(jobs);
    if workers <= 1 {
        for index in 0..jobs {
            if !each(index, job(index)) {
                return;
            }
        }
        return;
    }

    struct Slots<T> {
        results: Vec<Option<T>>,
        panicked: bool,
    }

    let next = AtomicUsize::new(0);
    let stop = AtomicBool::new(false);
    let state = Mutex::new(Slots {
        results: (0..jobs).map(|_| None).collect(),
        panicked: false,
    });
    let ready = Condvar::new();

    // Flags a panicking worker to the consumer, which would otherwise wait
    // forever on the slot that worker was going to fill.
    struct PanicFlag<'a, T> {
        state: &'a Mutex<Slots<T>>,
        ready: &'a Condvar,
    }
    impl<T> Drop for PanicFlag<'_, T> {
        fn drop(&mut self) {
            if std::thread::panicking() {
                if let Ok(mut slots) = self.state.lock() {
                    slots.panicked = true;
                }
                self.ready.notify_all();
            }
        }
    }

    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| {
                let _flag = PanicFlag {
                    state: &state,
                    ready: &ready,
                };
                loop {
                    if stop.load(Ordering::Relaxed) {
                        break;
                    }
                    let index = next.fetch_add(1, Ordering::Relaxed);
                    if index >= jobs {
                        break;
                    }
                    let result = job(index);
                    state.lock().expect("result slots poisoned").results[index] = Some(result);
                    ready.notify_all();
                }
            });
        }
        for index in 0..jobs {
            let result = {
                let mut slots = state.lock().expect("result slots poisoned");
                loop {
                    if let Some(result) = slots.results[index].take() {
                        break result;
                    }
                    if slots.panicked {
                        // Let the workers drain; the scope join below
                        // re-raises the worker's panic on this thread.
                        stop.store(true, Ordering::Relaxed);
                        return;
                    }
                    slots = ready.wait(slots).expect("result slots poisoned");
                }
            };
            if !each(index, result) {
                stop.store(true, Ordering::Relaxed);
                return;
            }
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_index_order() {
        for workers in [1, 2, 8] {
            let out = run_indexed(workers, 37, |i| i * i);
            assert_eq!(out, (0..37).map(|i| i * i).collect::<Vec<_>>());
        }
    }

    #[test]
    fn zero_jobs_yield_empty_results() {
        let out: Vec<usize> = run_indexed(4, 0, |i| i);
        assert!(out.is_empty());
    }

    #[test]
    fn more_workers_than_jobs_is_fine() {
        let out = run_indexed(16, 3, |i| i + 1);
        assert_eq!(out, vec![1, 2, 3]);
    }

    #[test]
    fn default_parallelism_is_at_least_one() {
        assert!(default_parallelism() >= 1);
    }

    #[test]
    fn each_sees_results_in_index_order() {
        for workers in [1, 2, 8] {
            let mut seen = Vec::new();
            run_indexed_each(
                workers,
                37,
                |i| i * 3,
                |index, result| {
                    seen.push((index, result));
                    true
                },
            );
            let expected: Vec<_> = (0..37).map(|i| (i, i * 3)).collect();
            assert_eq!(seen, expected, "workers={workers}");
        }
    }

    #[test]
    fn each_returning_false_stops_the_run_early() {
        for workers in [1, 4] {
            let mut seen = Vec::new();
            run_indexed_each(
                workers,
                1000,
                |i| i,
                |index, _| {
                    seen.push(index);
                    index < 4
                },
            );
            assert_eq!(seen, vec![0, 1, 2, 3, 4], "workers={workers}");
        }
    }

    #[test]
    fn worker_panic_reaches_the_caller_without_deadlock() {
        let result = std::panic::catch_unwind(|| {
            run_indexed_each(
                4,
                64,
                |i| {
                    if i == 7 {
                        panic!("cell 7 exploded");
                    }
                    i
                },
                |_, _| true,
            );
        });
        assert!(result.is_err(), "the worker panic must propagate");
    }
}
