//! Dependency-free scoped work pool for embarrassingly parallel sweeps.
//!
//! The experiment grids are collections of independent cells (every cell is
//! seeded independently and shares no mutable state), so the scheduler can be
//! minimal: an atomic cursor hands out cell indices to a fixed set of scoped
//! worker threads, and each worker writes its result into the slot reserved
//! for that index. Results come back in **input order** regardless of which
//! worker computed them or in which order they finished, so a parallel run is
//! indistinguishable from a serial one.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// The number of workers a sweep uses when none is requested explicitly: one
/// per available hardware thread (falling back to 1 when the parallelism
/// cannot be queried).
pub fn default_parallelism() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// Runs `jobs` invocations of `job` (one per index in `0..jobs`) on up to
/// `workers` scoped threads, returning the results in index order.
///
/// With `workers <= 1` (or a single job) the jobs run inline on the calling
/// thread — the exact serial loop, with no thread machinery at all. Worker
/// threads claim indices from an atomic cursor, so scheduling is dynamic
/// (long and short cells interleave without static partitioning imbalance).
///
/// # Panics
///
/// Panics if `job` panics on any index (the panic is propagated when the
/// scope joins).
pub fn run_indexed<T, F>(workers: usize, jobs: usize, job: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let workers = workers.max(1).min(jobs);
    if workers <= 1 {
        return (0..jobs).map(&job).collect();
    }
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<T>>> = (0..jobs).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let index = next.fetch_add(1, Ordering::Relaxed);
                if index >= jobs {
                    break;
                }
                let result = job(index);
                *slots[index].lock().expect("result slot poisoned") = Some(result);
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result slot poisoned")
                .expect("every claimed index stores a result before the scope joins")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_index_order() {
        for workers in [1, 2, 8] {
            let out = run_indexed(workers, 37, |i| i * i);
            assert_eq!(out, (0..37).map(|i| i * i).collect::<Vec<_>>());
        }
    }

    #[test]
    fn zero_jobs_yield_empty_results() {
        let out: Vec<usize> = run_indexed(4, 0, |i| i);
        assert!(out.is_empty());
    }

    #[test]
    fn more_workers_than_jobs_is_fine() {
        let out = run_indexed(16, 3, |i| i + 1);
        assert_eq!(out, vec![1, 2, 3]);
    }

    #[test]
    fn default_parallelism_is_at_least_one() {
        assert!(default_parallelism() >= 1);
    }
}
