//! Weight-to-array mapping descriptors.

use imc_tensor::{ConvShape, LinearShape};

use crate::config::ArrayConfig;
use crate::cycles::{matrix_cycles, CycleBreakdown};

/// The mapping strategy that produced a [`MappedLayer`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MappingKind {
    /// Image-to-column mapping (one sliding window per load).
    Im2col,
    /// Shift-and-duplicate-kernel mapping (one parallel window per load).
    Sdk,
    /// Fully connected layer mapping (a single load per inference).
    Linear,
    /// A generic dense matrix region (used for low-rank factor stages).
    Dense,
}

/// One dense region of weights mapped onto the IMC fabric, together with the
/// number of input-vector loads it must serve per inference.
///
/// A conventional layer maps to exactly one `MappedLayer`; a low-rank
/// compressed layer maps to one per factor stage (the compression crate
/// combines them).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MappedLayer {
    /// Which mapping strategy produced this region.
    pub kind: MappingKind,
    /// Logical wordlines (matrix rows) occupied.
    pub rows_used: usize,
    /// Logical bitlines (matrix columns) occupied, before the
    /// physical-columns-per-weight expansion.
    pub cols_used: usize,
    /// Input-vector loads per inference.
    pub loads: usize,
    /// Array configuration the region is mapped onto.
    pub config: ArrayConfig,
}

impl MappedLayer {
    /// Creates a mapping descriptor for a generic dense matrix region.
    pub fn dense(rows_used: usize, cols_used: usize, loads: usize, config: ArrayConfig) -> Self {
        Self {
            kind: MappingKind::Dense,
            rows_used,
            cols_used,
            loads,
            config,
        }
    }

    /// The AR/AC/loads cycle breakdown of this region.
    pub fn breakdown(&self) -> CycleBreakdown {
        matrix_cycles(self.rows_used, self.cols_used, self.loads, &self.config)
    }

    /// Total computing cycles contributed by this region.
    pub fn cycles(&self) -> u64 {
        self.breakdown().cycles()
    }

    /// Number of physical arrays occupied by the weights of this region.
    pub fn arrays_used(&self) -> usize {
        self.breakdown().arrays_used()
    }

    /// Fraction of allocated array cells that actually hold weights
    /// (`0.0 ..= 1.0`). Idle rows and columns of partially filled tiles count
    /// against utilization, which is exactly the effect the paper's SDK
    /// mapping is designed to mitigate.
    pub fn utilization(&self) -> f64 {
        let allocated = self.arrays_used() as f64 * self.config.cells() as f64;
        if allocated == 0.0 {
            return 0.0;
        }
        let used = (self.rows_used * self.cols_used * self.config.columns_per_weight()) as f64;
        (used / allocated).min(1.0)
    }

    /// Number of weight cells (physical) this region programs.
    pub fn programmed_cells(&self) -> usize {
        self.rows_used * self.cols_used * self.config.columns_per_weight()
    }
}

/// im2col mapping of a convolutional layer: `n = IC·K_h·K_w` wordlines,
/// `OC` bitlines, one sliding window per load.
pub fn im2col_mapping(shape: &ConvShape, config: ArrayConfig) -> MappedLayer {
    MappedLayer {
        kind: MappingKind::Im2col,
        rows_used: shape.im2col_rows(),
        cols_used: shape.im2col_cols(),
        loads: shape.output_pixels(),
        config,
    }
}

/// Mapping of a fully connected layer: `in_features` wordlines,
/// `out_features` bitlines, one load per inference.
pub fn linear_mapping(shape: &LinearShape, config: ArrayConfig) -> MappedLayer {
    MappedLayer {
        kind: MappingKind::Linear,
        rows_used: shape.in_features,
        cols_used: shape.out_features,
        loads: 1,
        config,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn im2col_mapping_of_resnet_layer() {
        let cfg = ArrayConfig::square(64).unwrap();
        let shape = ConvShape::square(16, 16, 3, 1, 1, 32).unwrap();
        let m = im2col_mapping(&shape, cfg);
        assert_eq!(m.kind, MappingKind::Im2col);
        assert_eq!(m.rows_used, 144);
        assert_eq!(m.cols_used, 16);
        assert_eq!(m.loads, 1024);
        assert_eq!(m.cycles(), 3 * 1024);
        assert_eq!(m.arrays_used(), 3);
    }

    #[test]
    fn im2col_utilization_is_low_for_few_output_channels() {
        // 144x16 on 64x64 arrays: 3 arrays allocated, 2304 of 12288 cells used.
        let cfg = ArrayConfig::square(64).unwrap();
        let shape = ConvShape::square(16, 16, 3, 1, 1, 32).unwrap();
        let m = im2col_mapping(&shape, cfg);
        let exp = (144.0 * 16.0) / (3.0 * 4096.0);
        assert!((m.utilization() - exp).abs() < 1e-12);
        assert!(m.utilization() < 0.2);
    }

    #[test]
    fn linear_mapping_uses_single_load() {
        let cfg = ArrayConfig::square(128).unwrap();
        let shape = LinearShape::new(256, 100).unwrap();
        let m = linear_mapping(&shape, cfg);
        assert_eq!(m.loads, 1);
        assert_eq!(m.cycles(), 2);
        assert_eq!(m.rows_used, 256);
    }

    #[test]
    fn dense_region_cycles_and_cells() {
        let cfg = ArrayConfig::square(32).unwrap();
        let m = MappedLayer::dense(40, 20, 7, cfg);
        assert_eq!(m.breakdown().array_rows, 2);
        assert_eq!(m.breakdown().array_cols, 1);
        assert_eq!(m.cycles(), 2 * 7);
        assert_eq!(m.programmed_cells(), 800);
    }

    #[test]
    fn utilization_never_exceeds_one() {
        let cfg = ArrayConfig::square(32).unwrap();
        let m = MappedLayer::dense(32, 32, 1, cfg);
        assert!((m.utilization() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn wide_weight_precision_scales_programmed_cells() {
        let cfg = ArrayConfig::new(64, 64, 4, 8, 4).unwrap();
        let m = MappedLayer::dense(10, 10, 1, cfg);
        assert_eq!(m.programmed_cells(), 200);
    }
}
