//! The array-row / array-column (AR/AC) computing-cycle model.
//!
//! Following Rhe et al. (VW-SDK) and ConvMapSIM, the cost of executing a
//! mapped weight matrix on a tiled IMC fabric is expressed as
//!
//! ```text
//! cycles = AR · AC · loads
//! ```
//!
//! where `AR = ⌈rows_used / array_rows⌉` is the number of array tiles needed
//! in the row (wordline) direction, `AC = ⌈cols_used / array_logical_cols⌉`
//! in the column (bitline) direction, and `loads` is the number of distinct
//! input vectors that must be applied (sliding-window positions for im2col,
//! parallel-window positions for SDK, 1 for a fully connected layer).
//!
//! One "computing cycle" is one array MVM with the default 4-bit activation
//! encoding; comparisons across activation precisions (Fig. 8) additionally
//! scale by the relative number of input bit-slices, which is handled by the
//! quantization layer rather than here.

use crate::config::ArrayConfig;

/// Number of array tiles needed to host `extent` logical units when each
/// array offers `per_array` of them. Zero extents need zero tiles.
pub fn tiles_for(extent: usize, per_array: usize) -> usize {
    if extent == 0 {
        0
    } else {
        extent.div_ceil(per_array)
    }
}

/// Cycle accounting for one mapped matrix region.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CycleBreakdown {
    /// Array tiles in the row (wordline) direction.
    pub array_rows: usize,
    /// Array tiles in the column (bitline) direction.
    pub array_cols: usize,
    /// Number of input-vector loads.
    pub loads: usize,
}

impl CycleBreakdown {
    /// Total computing cycles `AR · AC · loads`.
    pub fn cycles(&self) -> u64 {
        self.array_rows as u64 * self.array_cols as u64 * self.loads as u64
    }

    /// Total number of physical arrays occupied by the weights (`AR · AC`).
    pub fn arrays_used(&self) -> usize {
        self.array_rows * self.array_cols
    }
}

/// Computes the cycle breakdown for a dense `rows_used × cols_used` logical
/// matrix applied `loads` times on arrays of the given configuration.
pub fn matrix_cycles(
    rows_used: usize,
    cols_used: usize,
    loads: usize,
    config: &ArrayConfig,
) -> CycleBreakdown {
    CycleBreakdown {
        array_rows: tiles_for(rows_used, config.rows),
        array_cols: tiles_for(cols_used, config.logical_cols()),
        loads,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiles_round_up() {
        assert_eq!(tiles_for(0, 64), 0);
        assert_eq!(tiles_for(1, 64), 1);
        assert_eq!(tiles_for(64, 64), 1);
        assert_eq!(tiles_for(65, 64), 2);
        assert_eq!(tiles_for(288, 64), 5);
    }

    #[test]
    fn cycles_multiply_all_three_factors() {
        let b = CycleBreakdown {
            array_rows: 3,
            array_cols: 2,
            loads: 100,
        };
        assert_eq!(b.cycles(), 600);
        assert_eq!(b.arrays_used(), 6);
    }

    #[test]
    fn matrix_cycles_for_resnet_layer() {
        // 16->16 3x3 conv on a 32x32 feature map, 64x64 array:
        // rows = 144 -> AR 3, cols = 16 -> AC 1, loads = 1024.
        let cfg = ArrayConfig::square(64).unwrap();
        let b = matrix_cycles(144, 16, 1024, &cfg);
        assert_eq!(b.array_rows, 3);
        assert_eq!(b.array_cols, 1);
        assert_eq!(b.cycles(), 3 * 1024);
    }

    #[test]
    fn weight_precision_reduces_logical_columns() {
        // 8-bit weights in 4-bit cells need 2 physical columns per weight.
        let cfg = ArrayConfig::new(64, 64, 4, 8, 4).unwrap();
        let b = matrix_cycles(64, 40, 10, &cfg);
        assert_eq!(cfg.logical_cols(), 32);
        assert_eq!(b.array_cols, 2);
    }

    #[test]
    fn empty_matrix_needs_no_arrays() {
        let cfg = ArrayConfig::square(32).unwrap();
        let b = matrix_cycles(0, 0, 5, &cfg);
        assert_eq!(b.cycles(), 0);
        assert_eq!(b.arrays_used(), 0);
    }
}
