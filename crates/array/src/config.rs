//! Physical IMC crossbar array configuration.

use crate::{Error, Result};

/// Physical parameters of one IMC crossbar array.
///
/// The paper evaluates square arrays of 32×32, 64×64 and 128×128 cells with
/// 4-bit weights stored in 4-bit cells (one physical column per logical
/// weight column) and bit-serial inputs. `cell_bits` and `input_bits` are
/// kept explicit so the quantization comparison (Fig. 8) can scale the
/// column count and load count of a mapping.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ArrayConfig {
    /// Number of wordlines (rows) per array.
    pub rows: usize,
    /// Number of bitlines (columns) per array.
    pub cols: usize,
    /// Bits stored per memory cell.
    pub cell_bits: usize,
    /// Bits per weight; `ceil(weight_bits / cell_bits)` physical columns are
    /// needed per logical weight column.
    pub weight_bits: usize,
    /// Bits per input activation; inputs are applied bit-serially, so each
    /// input-vector load takes `input_bits` wordline activations.
    pub input_bits: usize,
}

impl ArrayConfig {
    /// The paper's default bit-serial input/ADC precision
    /// ([`ArrayConfig::square`] uses it); evaluation layers treat arrays at
    /// this precision as the unscaled cycle baseline.
    pub const DEFAULT_INPUT_BITS: usize = 4;

    /// Creates an array configuration.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidArray`] when any parameter is zero.
    pub fn new(
        rows: usize,
        cols: usize,
        cell_bits: usize,
        weight_bits: usize,
        input_bits: usize,
    ) -> Result<Self> {
        if rows == 0 || cols == 0 {
            return Err(Error::InvalidArray {
                what: "rows and cols must be non-zero",
            });
        }
        if cell_bits == 0 || weight_bits == 0 || input_bits == 0 {
            return Err(Error::InvalidArray {
                what: "bit precisions must be non-zero",
            });
        }
        Ok(Self {
            rows,
            cols,
            cell_bits,
            weight_bits,
            input_bits,
        })
    }

    /// The paper's default configuration for a square array: 4-bit weights in
    /// 4-bit cells, 4-bit activations.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidArray`] when `size` is zero.
    pub fn square(size: usize) -> Result<Self> {
        Self::new(size, size, 4, 4, 4)
    }

    /// The three array sizes evaluated in the paper (32, 64, 128), in the
    /// default 4-bit configuration.
    pub fn paper_sizes() -> [Self; 3] {
        [
            Self::square(32).expect("32 is a valid array size"),
            Self::square(64).expect("64 is a valid array size"),
            Self::square(128).expect("128 is a valid array size"),
        ]
    }

    /// Number of physical columns needed per logical weight column.
    pub fn columns_per_weight(&self) -> usize {
        self.weight_bits.div_ceil(self.cell_bits)
    }

    /// Number of logical weight columns that fit in one array.
    pub fn logical_cols(&self) -> usize {
        self.cols / self.columns_per_weight()
    }

    /// Total number of cells in one array.
    pub fn cells(&self) -> usize {
        self.rows * self.cols
    }

    /// Returns a copy with a different weight precision (used by the
    /// quantization sweep of Fig. 8).
    pub fn with_weight_bits(&self, weight_bits: usize) -> Result<Self> {
        Self::new(
            self.rows,
            self.cols,
            self.cell_bits,
            weight_bits,
            self.input_bits,
        )
    }

    /// Returns a copy with a different activation precision.
    pub fn with_input_bits(&self, input_bits: usize) -> Result<Self> {
        Self::new(
            self.rows,
            self.cols,
            self.cell_bits,
            self.weight_bits,
            input_bits,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_validates_parameters() {
        assert!(ArrayConfig::new(0, 64, 4, 4, 4).is_err());
        assert!(ArrayConfig::new(64, 0, 4, 4, 4).is_err());
        assert!(ArrayConfig::new(64, 64, 0, 4, 4).is_err());
        assert!(ArrayConfig::new(64, 64, 4, 0, 4).is_err());
        assert!(ArrayConfig::new(64, 64, 4, 4, 0).is_err());
        assert!(ArrayConfig::new(64, 64, 4, 4, 4).is_ok());
    }

    #[test]
    fn square_uses_paper_defaults() {
        let a = ArrayConfig::square(64).unwrap();
        assert_eq!(a.rows, 64);
        assert_eq!(a.cols, 64);
        assert_eq!(a.cell_bits, 4);
        assert_eq!(a.weight_bits, 4);
        assert_eq!(a.input_bits, 4);
        assert_eq!(a.columns_per_weight(), 1);
        assert_eq!(a.logical_cols(), 64);
        assert_eq!(a.cells(), 4096);
    }

    #[test]
    fn paper_sizes_are_32_64_128() {
        let sizes: Vec<usize> = ArrayConfig::paper_sizes().iter().map(|a| a.rows).collect();
        assert_eq!(sizes, vec![32, 64, 128]);
    }

    #[test]
    fn higher_weight_precision_costs_extra_columns() {
        let a = ArrayConfig::new(64, 64, 2, 8, 4).unwrap();
        assert_eq!(a.columns_per_weight(), 4);
        assert_eq!(a.logical_cols(), 16);
    }

    #[test]
    fn with_weight_bits_keeps_other_fields() {
        let a = ArrayConfig::square(128).unwrap();
        let b = a.with_weight_bits(2).unwrap();
        assert_eq!(b.rows, 128);
        assert_eq!(b.weight_bits, 2);
        assert_eq!(b.input_bits, 4);
        let c = a.with_input_bits(1).unwrap();
        assert_eq!(c.input_bits, 1);
    }
}
