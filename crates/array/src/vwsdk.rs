//! Variable-window SDK (VW-SDK) parallel-window search.
//!
//! Rhe et al. observe that the best parallel-window geometry depends on the
//! layer shape *and* the array size: larger windows amortize more sliding
//! windows per load but inflate the wordline count (and therefore `AR`).
//! The search below enumerates candidate windows, computes the AR/AC cycle
//! count of each and returns the minimum. The kernel-sized window (plain
//! im2col) is always a candidate, so the result never loses to im2col.

use imc_tensor::ConvShape;

use crate::config::ArrayConfig;
use crate::sdk::{ParallelWindow, SdkMapping};
use crate::Result;

/// Upper bound on how many pixels a parallel window may extend beyond the
/// kernel in each dimension during the search. Windows larger than this give
/// rapidly diminishing returns because `AR` grows linearly with the window
/// area while `N` grows sub-quadratically.
const MAX_WINDOW_GROWTH: usize = 13;

/// The outcome of a VW-SDK window search.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WindowSearchResult {
    /// The selected parallel window.
    pub window: ParallelWindow,
    /// The mapping induced by the selected window.
    pub mapping: SdkMapping,
    /// Computing cycles of the best window.
    pub cycles: u64,
    /// Computing cycles of the kernel-sized (im2col) window, for reference.
    pub im2col_cycles: u64,
}

impl WindowSearchResult {
    /// Speed-up of the selected window over plain im2col mapping.
    pub fn speedup_vs_im2col(&self) -> f64 {
        if self.cycles == 0 {
            return 1.0;
        }
        self.im2col_cycles as f64 / self.cycles as f64
    }
}

/// Enumerates candidate parallel windows for a layer.
///
/// Candidates range from the kernel itself up to `MAX_WINDOW_GROWTH` extra
/// pixels per dimension, clamped to the padded input extent.
pub fn candidate_windows(shape: &ConvShape) -> Vec<ParallelWindow> {
    let max_h = (shape.input_h + 2 * shape.padding).min(shape.kernel_h + MAX_WINDOW_GROWTH);
    let max_w = (shape.input_w + 2 * shape.padding).min(shape.kernel_w + MAX_WINDOW_GROWTH);
    let mut out = Vec::new();
    for h in shape.kernel_h..=max_h {
        for w in shape.kernel_w..=max_w {
            out.push(ParallelWindow::new(h, w));
        }
    }
    out
}

/// Searches for the parallel window minimizing computing cycles for `shape`
/// on arrays of configuration `config`.
///
/// Ties are broken toward smaller windows (fewer structural zeros, lower
/// write energy). The kernel-sized window is always a candidate, so the
/// returned cycle count never exceeds the im2col cycle count.
///
/// # Errors
///
/// Propagates window-construction errors (which cannot occur for the
/// candidates generated internally, but the signature stays fallible for
/// future custom candidate lists).
pub fn search_best_window(shape: &ConvShape, config: ArrayConfig) -> Result<WindowSearchResult> {
    let im2col = SdkMapping::new(shape, ParallelWindow::kernel_sized(shape), config)?;
    let im2col_cycles = im2col.cycles();
    let mut best = im2col;
    let mut best_cycles = im2col_cycles;
    let mut best_area = best.window.h * best.window.w;
    for window in candidate_windows(shape) {
        let mapping = SdkMapping::new(shape, window, config)?;
        let cycles = mapping.cycles();
        let area = window.h * window.w;
        if cycles < best_cycles || (cycles == best_cycles && area < best_area) {
            best = mapping;
            best_cycles = cycles;
            best_area = area;
        }
    }
    Ok(WindowSearchResult {
        window: best.window,
        mapping: best,
        cycles: best_cycles,
        im2col_cycles,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn candidates_include_kernel_sized_window() {
        let shape = ConvShape::square(16, 16, 3, 1, 1, 32).unwrap();
        let cands = candidate_windows(&shape);
        assert!(cands.contains(&ParallelWindow::new(3, 3)));
        assert!(cands.len() > 10);
    }

    #[test]
    fn candidates_respect_small_inputs() {
        let shape = ConvShape::square(64, 64, 3, 1, 1, 8).unwrap();
        let cands = candidate_windows(&shape);
        assert!(cands.iter().all(|w| w.h <= 10 && w.w <= 10));
    }

    #[test]
    fn search_never_loses_to_im2col() {
        let cfg = ArrayConfig::square(64).unwrap();
        for (ic, oc, input) in [(16, 16, 32), (32, 32, 16), (64, 64, 8), (3, 16, 32)] {
            let shape = ConvShape::square(ic, oc, 3, 1, 1, input).unwrap();
            let res = search_best_window(&shape, cfg).unwrap();
            assert!(res.cycles <= res.im2col_cycles);
            assert!(res.speedup_vs_im2col() >= 1.0);
        }
    }

    #[test]
    fn search_finds_larger_windows_for_small_channel_counts() {
        // With 16 output channels on a 64-wide array, im2col leaves 48
        // columns idle, so the search should pick a window with N > 1.
        let cfg = ArrayConfig::square(64).unwrap();
        let shape = ConvShape::square(16, 16, 3, 1, 1, 32).unwrap();
        let res = search_best_window(&shape, cfg).unwrap();
        assert!(res.mapping.parallel_outputs() > 1);
        assert!(res.speedup_vs_im2col() > 1.5);
    }

    #[test]
    fn search_sticks_to_small_windows_when_columns_are_saturated() {
        // 256 output channels on a 32-wide array already saturate the
        // columns; duplicating kernels cannot reduce AC, so the benefit of a
        // larger window is limited and the speed-up stays modest.
        let cfg = ArrayConfig::square(32).unwrap();
        let shape = ConvShape::square(256, 256, 3, 1, 1, 8).unwrap();
        let res = search_best_window(&shape, cfg).unwrap();
        assert!(res.speedup_vs_im2col() < 2.0);
    }

    #[test]
    fn larger_arrays_enable_larger_speedups() {
        let shape = ConvShape::square(16, 16, 3, 1, 1, 32).unwrap();
        let s32 = search_best_window(&shape, ArrayConfig::square(32).unwrap()).unwrap();
        let s128 = search_best_window(&shape, ArrayConfig::square(128).unwrap()).unwrap();
        assert!(s128.speedup_vs_im2col() >= s32.speedup_vs_im2col());
    }
}
