//! Shift-and-duplicate-kernel (SDK) mapping.
//!
//! The SDK method (Zhang et al., Rhe et al.) applies a *parallel window* —
//! a patch larger than the kernel — to the crossbar wordlines and places
//! shifted, duplicated copies of every kernel in otherwise-idle bitlines, so
//! that one array access produces the outputs of `N` sliding windows at once.
//!
//! This module provides both the *shape-level* description used by the cycle
//! model ([`SdkMapping`]) and the *value-level* construction of the crossbar
//! contents ([`sdk_matrix`]), which is what the core crate uses to verify the
//! paper's Theorem 2 (`D(SDK(W)) = (I_N ⊗ L)·SDK(R)`) numerically.

use imc_linalg::Matrix;
use imc_tensor::{ConvShape, FeatureMap};

use crate::config::ArrayConfig;
use crate::mapping::{MappedLayer, MappingKind};
use crate::{Error, Result};

/// A parallel-window geometry (`P_h × P_w` input pixels per channel).
///
/// The im2col mapping is the degenerate case `P_h = K_h`, `P_w = K_w`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ParallelWindow {
    /// Window height in input pixels.
    pub h: usize,
    /// Window width in input pixels.
    pub w: usize,
}

impl ParallelWindow {
    /// Creates a parallel window.
    pub fn new(h: usize, w: usize) -> Self {
        Self { h, w }
    }

    /// The degenerate window equal to the kernel itself (im2col).
    pub fn kernel_sized(shape: &ConvShape) -> Self {
        Self {
            h: shape.kernel_h,
            w: shape.kernel_w,
        }
    }
}

/// A shape-level SDK mapping of one convolutional layer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SdkMapping {
    /// The parallel-window geometry.
    pub window: ParallelWindow,
    /// Number of sliding windows covered vertically by one parallel window.
    pub windows_h: usize,
    /// Number of sliding windows covered horizontally by one parallel window.
    pub windows_w: usize,
    /// The dense-region descriptor (rows/cols/loads) of the mapping.
    pub mapped: MappedLayer,
}

impl SdkMapping {
    /// Builds the SDK mapping of `shape` with parallel window `window` onto
    /// arrays of configuration `config`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidWindow`] when the window is smaller than the
    /// kernel or larger than the padded input.
    pub fn new(shape: &ConvShape, window: ParallelWindow, config: ArrayConfig) -> Result<Self> {
        validate_window(shape, &window)?;
        let windows_h = (window.h - shape.kernel_h) / shape.stride + 1;
        let windows_w = (window.w - shape.kernel_w) / shape.stride + 1;
        let n_outputs = windows_h * windows_w;
        let rows_used = shape.in_channels * window.h * window.w;
        let cols_used = n_outputs * shape.out_channels;
        let loads = shape.output_h().div_ceil(windows_h) * shape.output_w().div_ceil(windows_w);
        Ok(Self {
            window,
            windows_h,
            windows_w,
            mapped: MappedLayer {
                kind: MappingKind::Sdk,
                rows_used,
                cols_used,
                loads,
                config,
            },
        })
    }

    /// Number of parallel outputs `N` per load.
    pub fn parallel_outputs(&self) -> usize {
        self.windows_h * self.windows_w
    }

    /// Total computing cycles of this mapping.
    pub fn cycles(&self) -> u64 {
        self.mapped.cycles()
    }

    /// Fraction of programmed cells that hold non-structural (possibly
    /// non-zero) weights. SDK mapping places each kernel column only in the
    /// rows its shifted window touches, so the density is
    /// `K_h·K_w / (P_h·P_w)`; the remaining cells are structural zeros.
    pub fn structural_density(&self, shape: &ConvShape) -> f64 {
        (shape.kernel_h * shape.kernel_w) as f64 / (self.window.h * self.window.w) as f64
    }
}

fn validate_window(shape: &ConvShape, window: &ParallelWindow) -> Result<()> {
    if window.h < shape.kernel_h || window.w < shape.kernel_w {
        return Err(Error::InvalidWindow {
            what: "parallel window must be at least as large as the kernel",
        });
    }
    if window.h > shape.input_h + 2 * shape.padding || window.w > shape.input_w + 2 * shape.padding
    {
        return Err(Error::InvalidWindow {
            what: "parallel window exceeds the padded input",
        });
    }
    Ok(())
}

/// Materializes the crossbar contents of the SDK mapping of a weight matrix.
///
/// `weight` is the im2col weight matrix in the paper's orientation
/// (`m × n`, `m` = output channels, `n = IC·K_h·K_w`). The result is the
/// `b × (N·m)` matrix programmed into the crossbar, where `b = IC·P_h·P_w`
/// is the flattened parallel-window length and `N` the number of parallel
/// outputs; column `s·m + o` holds output channel `o` of the `s`-th shifted
/// kernel copy. Cells not touched by a shifted kernel are structural zeros.
///
/// # Errors
///
/// Returns [`Error::InvalidWindow`] for inconsistent windows and
/// [`Error::Tensor`]/[`Error::Linalg`] when `weight` does not match `shape`.
pub fn sdk_matrix(weight: &Matrix, shape: &ConvShape, window: ParallelWindow) -> Result<Matrix> {
    validate_window(shape, &window)?;
    if weight.rows() != shape.out_channels || weight.cols() != shape.im2col_rows() {
        return Err(Error::Linalg(imc_linalg::Error::ShapeMismatch {
            left: weight.shape(),
            right: (shape.out_channels, shape.im2col_rows()),
            op: "sdk_matrix (weight must be OC x IC*Kh*Kw)",
        }));
    }
    let windows_h = (window.h - shape.kernel_h) / shape.stride + 1;
    let windows_w = (window.w - shape.kernel_w) / shape.stride + 1;
    let n = windows_h * windows_w;
    let m = shape.out_channels;
    let b = shape.in_channels * window.h * window.w;
    let mut out = Matrix::zeros(b, n * m);
    for sy in 0..windows_h {
        for sx in 0..windows_w {
            let s = sy * windows_w + sx;
            let dy = sy * shape.stride;
            let dx = sx * shape.stride;
            for o in 0..m {
                for ic in 0..shape.in_channels {
                    for ky in 0..shape.kernel_h {
                        for kx in 0..shape.kernel_w {
                            let j = (ic * shape.kernel_h + ky) * shape.kernel_w + kx;
                            let row = (ic * window.h + dy + ky) * window.w + dx + kx;
                            out.set(row, s * m + o, weight.get(o, j));
                        }
                    }
                }
            }
        }
    }
    Ok(out)
}

/// Unrolls the input feature map into parallel-window patches.
///
/// The result has `b = IC·P_h·P_w` rows and one column per parallel-window
/// position (`⌈OH/N_h⌉ · ⌈OW/N_w⌉` columns). Applying the transpose of the
/// [`sdk_matrix`] crossbar contents to column `p` yields the `N·m` outputs of
/// that parallel-window position.
///
/// # Errors
///
/// Returns [`Error::InvalidWindow`] for inconsistent windows and
/// [`Error::Tensor`] when the input does not match `shape`.
pub fn unroll_parallel_window(
    input: &FeatureMap,
    shape: &ConvShape,
    window: ParallelWindow,
) -> Result<Matrix> {
    validate_window(shape, &window)?;
    if input.channels() != shape.in_channels
        || input.height() != shape.input_h
        || input.width() != shape.input_w
    {
        return Err(Error::Tensor(imc_tensor::Error::DimensionMismatch {
            expected: shape.in_channels * shape.input_h * shape.input_w,
            actual: input.channels() * input.height() * input.width(),
        }));
    }
    let windows_h = (window.h - shape.kernel_h) / shape.stride + 1;
    let windows_w = (window.w - shape.kernel_w) / shape.stride + 1;
    let pos_h = shape.output_h().div_ceil(windows_h);
    let pos_w = shape.output_w().div_ceil(windows_w);
    let b = shape.in_channels * window.h * window.w;
    let mut out = Matrix::zeros(b, pos_h * pos_w);
    for ty in 0..pos_h {
        for tx in 0..pos_w {
            let col = ty * pos_w + tx;
            let base_y = (ty * windows_h * shape.stride) as isize - shape.padding as isize;
            let base_x = (tx * windows_w * shape.stride) as isize - shape.padding as isize;
            for ic in 0..shape.in_channels {
                for py in 0..window.h {
                    for px in 0..window.w {
                        let row = (ic * window.h + py) * window.w + px;
                        let v = input.get_padded(ic, base_y + py as isize, base_x + px as isize);
                        out.set(row, col, v);
                    }
                }
            }
        }
    }
    Ok(out)
}

/// Assembles the output feature map from per-position SDK crossbar outputs.
///
/// `outputs` must be the `(N·m) × positions` matrix obtained as
/// `sdk_matrix(W)ᵀ · unroll_parallel_window(x)`. Outputs that fall outside
/// the feature map (parallel windows overhanging the right/bottom edge) are
/// discarded.
///
/// # Errors
///
/// Returns [`Error::InvalidWindow`] when the output matrix dimensions do not
/// match the mapping geometry.
pub fn assemble_sdk_output(
    outputs: &Matrix,
    shape: &ConvShape,
    window: ParallelWindow,
) -> Result<FeatureMap> {
    validate_window(shape, &window)?;
    let windows_h = (window.h - shape.kernel_h) / shape.stride + 1;
    let windows_w = (window.w - shape.kernel_w) / shape.stride + 1;
    let pos_h = shape.output_h().div_ceil(windows_h);
    let pos_w = shape.output_w().div_ceil(windows_w);
    let n = windows_h * windows_w;
    let m = shape.out_channels;
    if outputs.rows() != n * m || outputs.cols() != pos_h * pos_w {
        return Err(Error::InvalidWindow {
            what: "output matrix does not match SDK mapping geometry",
        });
    }
    let oh = shape.output_h();
    let ow = shape.output_w();
    let mut fm = FeatureMap::zeros(m, oh, ow).map_err(Error::Tensor)?;
    for ty in 0..pos_h {
        for tx in 0..pos_w {
            let col = ty * pos_w + tx;
            for sy in 0..windows_h {
                for sx in 0..windows_w {
                    let oy = ty * windows_h + sy;
                    let ox = tx * windows_w + sx;
                    if oy >= oh || ox >= ow {
                        continue;
                    }
                    let s = sy * windows_w + sx;
                    for o in 0..m {
                        fm.set(o, oy, ox, outputs.get(s * m + o, col));
                    }
                }
            }
        }
    }
    Ok(fm)
}

#[cfg(test)]
mod tests {
    use super::*;
    use imc_linalg::random::SeededRng;
    use imc_tensor::{conv2d_im2col, Tensor4};

    fn random_feature_map(c: usize, h: usize, w: usize, seed: u64) -> FeatureMap {
        let mut rng = SeededRng::seed_from_u64(seed);
        let data = (0..c * h * w).map(|_| rng.gen_range(-1.0..1.0)).collect();
        FeatureMap::from_vec(c, h, w, data).unwrap()
    }

    #[test]
    fn window_validation() {
        let shape = ConvShape::square(4, 8, 3, 1, 1, 8).unwrap();
        let cfg = ArrayConfig::square(64).unwrap();
        assert!(SdkMapping::new(&shape, ParallelWindow::new(2, 3), cfg).is_err());
        assert!(SdkMapping::new(&shape, ParallelWindow::new(3, 3), cfg).is_ok());
        assert!(SdkMapping::new(&shape, ParallelWindow::new(64, 4), cfg).is_err());
    }

    #[test]
    fn kernel_sized_window_reduces_to_im2col() {
        let shape = ConvShape::square(16, 16, 3, 1, 1, 32).unwrap();
        let cfg = ArrayConfig::square(64).unwrap();
        let sdk = SdkMapping::new(&shape, ParallelWindow::kernel_sized(&shape), cfg).unwrap();
        assert_eq!(sdk.parallel_outputs(), 1);
        assert_eq!(sdk.mapped.rows_used, shape.im2col_rows());
        assert_eq!(sdk.mapped.cols_used, shape.im2col_cols());
        assert_eq!(sdk.mapped.loads, shape.output_pixels());
        let im2col = crate::mapping::im2col_mapping(&shape, cfg);
        assert_eq!(sdk.cycles(), im2col.cycles());
    }

    #[test]
    fn four_by_four_window_gives_four_parallel_outputs() {
        // The paper's running example: a 4x4 PW over a 3x3 kernel duplicates
        // the kernel 3 extra times (4 parallel outputs).
        let shape = ConvShape::square(16, 16, 3, 1, 1, 32).unwrap();
        let cfg = ArrayConfig::square(64).unwrap();
        let sdk = SdkMapping::new(&shape, ParallelWindow::new(4, 4), cfg).unwrap();
        assert_eq!(sdk.parallel_outputs(), 4);
        assert_eq!(sdk.mapped.rows_used, 16 * 16);
        assert_eq!(sdk.mapped.cols_used, 4 * 16);
        // 32x32 outputs tiled by 2x2 windows -> 16x16 = 256 loads.
        assert_eq!(sdk.mapped.loads, 256);
    }

    #[test]
    fn sdk_reduces_cycles_versus_im2col_on_small_channel_layers() {
        let shape = ConvShape::square(16, 16, 3, 1, 1, 32).unwrap();
        let cfg = ArrayConfig::square(64).unwrap();
        let im2col = crate::mapping::im2col_mapping(&shape, cfg).cycles();
        let sdk = SdkMapping::new(&shape, ParallelWindow::new(4, 4), cfg)
            .unwrap()
            .cycles();
        assert!(sdk < im2col, "sdk {sdk} should beat im2col {im2col}");
    }

    #[test]
    fn structural_density_matches_kernel_to_window_ratio() {
        let shape = ConvShape::square(8, 8, 3, 1, 1, 16).unwrap();
        let cfg = ArrayConfig::square(64).unwrap();
        let sdk = SdkMapping::new(&shape, ParallelWindow::new(5, 5), cfg).unwrap();
        assert!((sdk.structural_density(&shape) - 9.0 / 25.0).abs() < 1e-12);
    }

    #[test]
    fn sdk_matrix_shape_and_density() {
        let shape = ConvShape::square(2, 3, 3, 1, 1, 8).unwrap();
        let w = Tensor4::kaiming_for(&shape, 1).unwrap().to_im2col_matrix();
        let window = ParallelWindow::new(4, 4);
        let m = sdk_matrix(&w, &shape, window).unwrap();
        assert_eq!(m.rows(), 2 * 16);
        assert_eq!(m.cols(), 4 * 3);
        // Each column holds exactly Kh*Kw*IC potentially-nonzero weights.
        let per_col_nonzero = m.col(0).unwrap().iter().filter(|&&x| x != 0.0).count();
        assert!(per_col_nonzero <= 18);
        assert!(per_col_nonzero >= 10);
    }

    #[test]
    fn sdk_matrix_rejects_wrong_weight_shape() {
        let shape = ConvShape::square(2, 3, 3, 1, 1, 8).unwrap();
        let w = Matrix::zeros(3, 17);
        assert!(sdk_matrix(&w, &shape, ParallelWindow::new(4, 4)).is_err());
    }

    #[test]
    fn sdk_crossbar_outputs_match_im2col_convolution() {
        // Functional check: applying the SDK crossbar contents to parallel
        // window patches reproduces the ordinary convolution outputs exactly.
        for (ph, pw_w) in [(3, 3), (4, 4), (4, 6), (5, 5)] {
            let shape = ConvShape::square(3, 4, 3, 1, 1, 8).unwrap();
            let weight = Tensor4::kaiming_for(&shape, 11).unwrap();
            let wmat = weight.to_im2col_matrix();
            let x = random_feature_map(3, 8, 8, 5);
            let window = ParallelWindow::new(ph, pw_w);

            let crossbar = sdk_matrix(&wmat, &shape, window).unwrap();
            let patches = unroll_parallel_window(&x, &shape, window).unwrap();
            let outputs = crossbar.transpose().matmul(&patches).unwrap();
            let fm = assemble_sdk_output(&outputs, &shape, window).unwrap();

            let reference = conv2d_im2col(&x, &weight, &shape).unwrap();
            let max_diff = fm
                .as_slice()
                .iter()
                .zip(reference.as_slice().iter())
                .map(|(a, b)| (a - b).abs())
                .fold(0.0, f64::max);
            assert!(
                max_diff < 1e-9,
                "window {ph}x{pw_w}: SDK output mismatch {max_diff}"
            );
        }
    }

    #[test]
    fn sdk_matches_convolution_with_stride_two() {
        let shape = ConvShape::square(2, 3, 3, 2, 1, 9).unwrap();
        let weight = Tensor4::kaiming_for(&shape, 7).unwrap();
        let wmat = weight.to_im2col_matrix();
        let x = random_feature_map(2, 9, 9, 3);
        let window = ParallelWindow::new(5, 5);

        let crossbar = sdk_matrix(&wmat, &shape, window).unwrap();
        let patches = unroll_parallel_window(&x, &shape, window).unwrap();
        let outputs = crossbar.transpose().matmul(&patches).unwrap();
        let fm = assemble_sdk_output(&outputs, &shape, window).unwrap();

        let reference = conv2d_im2col(&x, &weight, &shape).unwrap();
        let max_diff = fm
            .as_slice()
            .iter()
            .zip(reference.as_slice().iter())
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max);
        assert!(max_diff < 1e-9, "stride-2 SDK output mismatch {max_diff}");
    }

    #[test]
    fn assemble_rejects_mismatched_output_matrix() {
        let shape = ConvShape::square(2, 3, 3, 1, 1, 8).unwrap();
        let bad = Matrix::zeros(5, 5);
        assert!(assemble_sdk_output(&bad, &shape, ParallelWindow::new(4, 4)).is_err());
    }
}
