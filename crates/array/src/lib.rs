//! IMC crossbar array model, convolutional weight mapping and the
//! array-row / array-column (AR/AC) computing-cycle model.
//!
//! An in-memory-computing (IMC) crossbar performs a matrix-vector
//! multiplication in one analog step: the weight matrix is programmed into
//! the cell conductances (wordlines = matrix rows = input dimension,
//! bitlines = matrix columns = output dimension) and the input vector is
//! applied to the wordlines. A real layer rarely fits into one physical
//! array, so the mapping determines how many **array-row tiles** (`AR`) and
//! **array-column tiles** (`AC`) are needed and, together with the number of
//! input-vector loads, the total number of **computing cycles** — the
//! performance metric used throughout the paper (Rhe et al., VW-SDK).
//!
//! Three mapping families are modeled:
//!
//! * [`mapping::im2col_mapping`] — the baseline image-to-column mapping: one
//!   sliding window per load, `n = IC·K·K` wordlines, `OC` bitlines.
//! * [`sdk::SdkMapping`] — shift-and-duplicate-kernel mapping: a larger
//!   *parallel window* is applied per load and duplicated, shifted copies of
//!   the kernels occupy otherwise-idle bitlines, producing `N` outputs per
//!   load at the cost of structurally sparse rows.
//! * [`vwsdk::search_best_window`] — the VW-SDK search that picks the
//!   parallel-window geometry minimizing computing cycles for a given layer
//!   and array size.
//!
//! The crate is weight-agnostic: it reasons about shapes and occupancy. The
//! actual crossbar *contents* for SDK mappings (needed to verify Theorem 2 of
//! the paper) are materialized by [`sdk::sdk_matrix`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod cycles;
pub mod mapping;
pub mod sdk;
pub mod vwsdk;

pub use config::ArrayConfig;
pub use cycles::{matrix_cycles, tiles_for, CycleBreakdown};
pub use mapping::{im2col_mapping, linear_mapping, MappedLayer, MappingKind};
pub use sdk::{
    assemble_sdk_output, sdk_matrix, unroll_parallel_window, ParallelWindow, SdkMapping,
};
pub use vwsdk::{search_best_window, WindowSearchResult};

/// Errors produced by the array-mapping layer.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum Error {
    /// The array configuration is invalid (zero rows/columns or zero
    /// precision).
    InvalidArray {
        /// Description of the offending parameter.
        what: &'static str,
    },
    /// The parallel window is smaller than the kernel or otherwise
    /// inconsistent with the layer shape.
    InvalidWindow {
        /// Description of the inconsistency.
        what: &'static str,
    },
    /// An error bubbled up from the tensor layer.
    Tensor(imc_tensor::Error),
    /// An error bubbled up from the linear-algebra layer.
    Linalg(imc_linalg::Error),
}

impl core::fmt::Display for Error {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Error::InvalidArray { what } => write!(f, "invalid array configuration: {what}"),
            Error::InvalidWindow { what } => write!(f, "invalid parallel window: {what}"),
            Error::Tensor(e) => write!(f, "tensor error: {e}"),
            Error::Linalg(e) => write!(f, "linear algebra error: {e}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Tensor(e) => Some(e),
            Error::Linalg(e) => Some(e),
            _ => None,
        }
    }
}

impl From<imc_tensor::Error> for Error {
    fn from(e: imc_tensor::Error) -> Self {
        Error::Tensor(e)
    }
}

impl From<imc_linalg::Error> for Error {
    fn from(e: imc_linalg::Error) -> Self {
        Error::Linalg(e)
    }
}

/// Convenient result alias used throughout the crate.
pub type Result<T> = core::result::Result<T, Error>;
