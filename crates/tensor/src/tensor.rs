//! Owned weight tensors and feature maps.

use imc_linalg::random::SeededRng;
use imc_linalg::Matrix;

use crate::shape::ConvShape;
use crate::{Error, Result};

/// A 4-dimensional convolution weight tensor laid out as
/// `[out_channel][in_channel][kernel_row][kernel_col]` (row-major).
#[derive(Debug, Clone, PartialEq)]
pub struct Tensor4 {
    oc: usize,
    ic: usize,
    kh: usize,
    kw: usize,
    data: Vec<f64>,
}

impl Tensor4 {
    /// Creates a tensor from a flat buffer in `OC, IC, KH, KW` order.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidShape`] for zero dimensions and
    /// [`Error::DimensionMismatch`] when the buffer length disagrees.
    pub fn from_vec(oc: usize, ic: usize, kh: usize, kw: usize, data: Vec<f64>) -> Result<Self> {
        if oc == 0 || ic == 0 || kh == 0 || kw == 0 {
            return Err(Error::InvalidShape {
                what: "tensor dimensions must be non-zero",
            });
        }
        let expected = oc * ic * kh * kw;
        if data.len() != expected {
            return Err(Error::DimensionMismatch {
                expected,
                actual: data.len(),
            });
        }
        Ok(Self {
            oc,
            ic,
            kh,
            kw,
            data,
        })
    }

    /// Creates an all-zero weight tensor.
    pub fn zeros(oc: usize, ic: usize, kh: usize, kw: usize) -> Result<Self> {
        Self::from_vec(oc, ic, kh, kw, vec![0.0; oc * ic * kh * kw])
    }

    /// Creates a Kaiming/He-initialized weight tensor from a seed
    /// (`N(0, 2/fan_in)` with `fan_in = IC·KH·KW`), the stand-in for trained
    /// weights used throughout the experiment harness.
    pub fn kaiming(oc: usize, ic: usize, kh: usize, kw: usize, seed: u64) -> Result<Self> {
        if oc == 0 || ic == 0 || kh == 0 || kw == 0 {
            return Err(Error::InvalidShape {
                what: "tensor dimensions must be non-zero",
            });
        }
        let fan_in = ic * kh * kw;
        let std = (2.0 / fan_in as f64).sqrt();
        let mut rng = SeededRng::seed_from_u64(seed);
        let data = (0..oc * ic * kh * kw)
            .map(|_| imc_linalg::random::normal_sample(&mut rng) * std)
            .collect();
        Self::from_vec(oc, ic, kh, kw, data)
    }

    /// Creates a Kaiming-initialized tensor matching a [`ConvShape`].
    pub fn kaiming_for(shape: &ConvShape, seed: u64) -> Result<Self> {
        Self::kaiming(
            shape.out_channels,
            shape.in_channels,
            shape.kernel_h,
            shape.kernel_w,
            seed,
        )
    }

    /// Number of output channels.
    pub fn out_channels(&self) -> usize {
        self.oc
    }

    /// Number of input channels.
    pub fn in_channels(&self) -> usize {
        self.ic
    }

    /// Kernel height.
    pub fn kernel_h(&self) -> usize {
        self.kh
    }

    /// Kernel width.
    pub fn kernel_w(&self) -> usize {
        self.kw
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` when the tensor has no elements (never the case after a
    /// successful construction).
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable access to the underlying buffer.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Element access.
    #[inline]
    pub fn get(&self, o: usize, i: usize, r: usize, c: usize) -> f64 {
        debug_assert!(o < self.oc && i < self.ic && r < self.kh && c < self.kw);
        self.data[((o * self.ic + i) * self.kh + r) * self.kw + c]
    }

    /// Sets a single element.
    #[inline]
    pub fn set(&mut self, o: usize, i: usize, r: usize, c: usize, value: f64) {
        debug_assert!(o < self.oc && i < self.ic && r < self.kh && c < self.kw);
        self.data[((o * self.ic + i) * self.kh + r) * self.kw + c] = value;
    }

    /// im2col matrixization in the paper's orientation: the result is the
    /// `m × n` matrix `W` with `m = OC` rows and `n = IC·KH·KW` columns.
    /// Row `o` is the flattening of output-channel `o`'s kernel in
    /// `(ic, kh, kw)` order.
    pub fn to_im2col_matrix(&self) -> Matrix {
        let n = self.ic * self.kh * self.kw;
        Matrix::from_fn(self.oc, n, |o, j| {
            let i = j / (self.kh * self.kw);
            let rem = j % (self.kh * self.kw);
            let r = rem / self.kw;
            let c = rem % self.kw;
            self.get(o, i, r, c)
        })
    }

    /// Rebuilds a tensor from an im2col weight matrix produced by
    /// [`Tensor4::to_im2col_matrix`] (or an approximation of it with the same
    /// shape).
    ///
    /// # Errors
    ///
    /// Returns [`Error::DimensionMismatch`] when the matrix shape is not
    /// `OC × (IC·KH·KW)`.
    pub fn from_im2col_matrix(matrix: &Matrix, ic: usize, kh: usize, kw: usize) -> Result<Self> {
        let n = ic * kh * kw;
        if matrix.cols() != n {
            return Err(Error::DimensionMismatch {
                expected: n,
                actual: matrix.cols(),
            });
        }
        let oc = matrix.rows();
        let mut t = Self::zeros(oc, ic, kh, kw)?;
        for o in 0..oc {
            for j in 0..n {
                let i = j / (kh * kw);
                let rem = j % (kh * kw);
                let r = rem / kw;
                let c = rem % kw;
                t.set(o, i, r, c, matrix.get(o, j));
            }
        }
        Ok(t)
    }

    /// Frobenius norm of the tensor viewed as a flat vector.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|&x| x * x).sum::<f64>().sqrt()
    }
}

/// A single-image feature map laid out as `[channel][row][col]`.
#[derive(Debug, Clone, PartialEq)]
pub struct FeatureMap {
    channels: usize,
    height: usize,
    width: usize,
    data: Vec<f64>,
}

impl FeatureMap {
    /// Creates a feature map from a flat `C, H, W` buffer.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidShape`] for zero dimensions and
    /// [`Error::DimensionMismatch`] for a wrong buffer length.
    pub fn from_vec(channels: usize, height: usize, width: usize, data: Vec<f64>) -> Result<Self> {
        if channels == 0 || height == 0 || width == 0 {
            return Err(Error::InvalidShape {
                what: "feature map dimensions must be non-zero",
            });
        }
        let expected = channels * height * width;
        if data.len() != expected {
            return Err(Error::DimensionMismatch {
                expected,
                actual: data.len(),
            });
        }
        Ok(Self {
            channels,
            height,
            width,
            data,
        })
    }

    /// Creates an all-zero feature map.
    pub fn zeros(channels: usize, height: usize, width: usize) -> Result<Self> {
        Self::from_vec(
            channels,
            height,
            width,
            vec![0.0; channels * height * width],
        )
    }

    /// Number of channels.
    pub fn channels(&self) -> usize {
        self.channels
    }

    /// Feature-map height.
    pub fn height(&self) -> usize {
        self.height
    }

    /// Feature-map width.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` when the feature map has no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable access to the underlying buffer.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable access to the underlying buffer.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Element access with zero padding: out-of-range coordinates return 0.
    /// `row`/`col` are signed so callers can index into the padded halo
    /// directly.
    #[inline]
    pub fn get_padded(&self, channel: usize, row: isize, col: isize) -> f64 {
        if row < 0 || col < 0 || row as usize >= self.height || col as usize >= self.width {
            return 0.0;
        }
        self.data[(channel * self.height + row as usize) * self.width + col as usize]
    }

    /// Element access.
    #[inline]
    pub fn get(&self, channel: usize, row: usize, col: usize) -> f64 {
        debug_assert!(channel < self.channels && row < self.height && col < self.width);
        self.data[(channel * self.height + row) * self.width + col]
    }

    /// Sets a single element.
    #[inline]
    pub fn set(&mut self, channel: usize, row: usize, col: usize, value: f64) {
        debug_assert!(channel < self.channels && row < self.height && col < self.width);
        self.data[(channel * self.height + row) * self.width + col] = value;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tensor_construction_validates_input() {
        assert!(Tensor4::from_vec(2, 2, 3, 3, vec![0.0; 36]).is_ok());
        assert!(matches!(
            Tensor4::from_vec(2, 2, 3, 3, vec![0.0; 35]),
            Err(Error::DimensionMismatch { .. })
        ));
        assert!(matches!(
            Tensor4::from_vec(0, 2, 3, 3, vec![]),
            Err(Error::InvalidShape { .. })
        ));
    }

    #[test]
    fn indexing_roundtrip() {
        let mut t = Tensor4::zeros(2, 3, 3, 3).unwrap();
        t.set(1, 2, 0, 1, 7.5);
        assert_eq!(t.get(1, 2, 0, 1), 7.5);
        assert_eq!(t.get(0, 0, 0, 0), 0.0);
    }

    #[test]
    fn im2col_matrix_has_paper_orientation() {
        let shape = ConvShape::square(4, 8, 3, 1, 1, 16).unwrap();
        let t = Tensor4::kaiming_for(&shape, 3).unwrap();
        let w = t.to_im2col_matrix();
        assert_eq!(w.rows(), 8); // m = OC
        assert_eq!(w.cols(), 4 * 9); // n = IC*KH*KW
                                     // Row o contains kernel o flattened in (ic, kh, kw) order.
        assert_eq!(w.get(3, 0), t.get(3, 0, 0, 0));
        assert_eq!(w.get(3, 9 + 4), t.get(3, 1, 1, 1));
        assert_eq!(w.get(7, 35), t.get(7, 3, 2, 2));
    }

    #[test]
    fn im2col_matrix_roundtrips_through_tensor() {
        let t = Tensor4::kaiming(6, 5, 3, 3, 11).unwrap();
        let w = t.to_im2col_matrix();
        let back = Tensor4::from_im2col_matrix(&w, 5, 3, 3).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn from_im2col_matrix_validates_width() {
        let w = Matrix::zeros(4, 10);
        assert!(Tensor4::from_im2col_matrix(&w, 3, 3, 3).is_err());
    }

    #[test]
    fn kaiming_is_deterministic_per_seed() {
        let a = Tensor4::kaiming(4, 4, 3, 3, 5).unwrap();
        let b = Tensor4::kaiming(4, 4, 3, 3, 5).unwrap();
        let c = Tensor4::kaiming(4, 4, 3, 3, 6).unwrap();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn kaiming_norm_scales_with_fan_in() {
        // Larger fan-in => smaller per-element std, but more elements; the
        // per-element variance should be ~2/fan_in.
        let t = Tensor4::kaiming(8, 16, 3, 3, 9).unwrap();
        let fan_in = 16.0 * 9.0;
        let var = t.as_slice().iter().map(|&x| x * x).sum::<f64>() / t.len() as f64;
        assert!((var - 2.0 / fan_in).abs() < 0.5 * (2.0 / fan_in));
    }

    #[test]
    fn feature_map_padding_returns_zero_outside() {
        let mut f = FeatureMap::zeros(1, 2, 2).unwrap();
        f.set(0, 1, 1, 3.0);
        assert_eq!(f.get_padded(0, 1, 1), 3.0);
        assert_eq!(f.get_padded(0, -1, 0), 0.0);
        assert_eq!(f.get_padded(0, 0, 2), 0.0);
        assert_eq!(f.get_padded(0, 5, 5), 0.0);
    }

    #[test]
    fn feature_map_validates_shape() {
        assert!(FeatureMap::from_vec(1, 2, 2, vec![0.0; 4]).is_ok());
        assert!(FeatureMap::from_vec(1, 2, 2, vec![0.0; 5]).is_err());
        assert!(FeatureMap::from_vec(0, 2, 2, vec![]).is_err());
    }
}
