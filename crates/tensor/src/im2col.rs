//! Input-side im2col and reference convolutions.
//!
//! Two reference convolution implementations are provided: a direct
//! seven-loop convolution and an im2col + GEMM convolution. They exist so
//! that every weight transformation in the workspace (low-rank factorization,
//! SDK mapping, pruning masks) can be validated end-to-end: a transformed
//! weight must produce the same (or a quantifiably approximate) output
//! feature map as the original.

use imc_linalg::Matrix;

use crate::shape::ConvShape;
use crate::tensor::{FeatureMap, Tensor4};
use crate::{Error, Result};

/// Unrolls the input feature map into the im2col patch matrix.
///
/// The result has `IC·KH·KW` rows and `OH·OW` columns: column `p` is the
/// flattened receptive field of output pixel `p` (row-major over the output
/// map), in the same `(ic, kh, kw)` ordering used by
/// [`Tensor4::to_im2col_matrix`]. The weight matrix `W (m×n)` times this
/// patch matrix yields the `OC × (OH·OW)` output.
///
/// # Errors
///
/// Returns [`Error::DimensionMismatch`] if the feature map does not match
/// `shape` (channels or spatial size).
pub fn unroll_input(input: &FeatureMap, shape: &ConvShape) -> Result<Matrix> {
    if input.channels() != shape.in_channels {
        return Err(Error::DimensionMismatch {
            expected: shape.in_channels,
            actual: input.channels(),
        });
    }
    if input.height() != shape.input_h || input.width() != shape.input_w {
        return Err(Error::DimensionMismatch {
            expected: shape.input_h * shape.input_w,
            actual: input.height() * input.width(),
        });
    }
    let oh = shape.output_h();
    let ow = shape.output_w();
    let n = shape.im2col_rows();
    let mut patches = Matrix::zeros(n, oh * ow);
    for oy in 0..oh {
        for ox in 0..ow {
            let col = oy * ow + ox;
            let base_y = (oy * shape.stride) as isize - shape.padding as isize;
            let base_x = (ox * shape.stride) as isize - shape.padding as isize;
            for ic in 0..shape.in_channels {
                for ky in 0..shape.kernel_h {
                    for kx in 0..shape.kernel_w {
                        let row = (ic * shape.kernel_h + ky) * shape.kernel_w + kx;
                        let v = input.get_padded(ic, base_y + ky as isize, base_x + kx as isize);
                        patches.set(row, col, v);
                    }
                }
            }
        }
    }
    Ok(patches)
}

/// Direct (nested-loop) 2-D convolution producing an `OC × OH × OW` feature
/// map.
///
/// # Errors
///
/// Returns [`Error::DimensionMismatch`] when the weight tensor or input does
/// not match `shape`.
pub fn conv2d_direct(
    input: &FeatureMap,
    weight: &Tensor4,
    shape: &ConvShape,
) -> Result<FeatureMap> {
    if weight.out_channels() != shape.out_channels
        || weight.in_channels() != shape.in_channels
        || weight.kernel_h() != shape.kernel_h
        || weight.kernel_w() != shape.kernel_w
    {
        return Err(Error::DimensionMismatch {
            expected: shape.weight_count(),
            actual: weight.len(),
        });
    }
    if input.channels() != shape.in_channels {
        return Err(Error::DimensionMismatch {
            expected: shape.in_channels,
            actual: input.channels(),
        });
    }
    let oh = shape.output_h();
    let ow = shape.output_w();
    let mut out = FeatureMap::zeros(shape.out_channels, oh, ow)?;
    for oc in 0..shape.out_channels {
        for oy in 0..oh {
            for ox in 0..ow {
                let base_y = (oy * shape.stride) as isize - shape.padding as isize;
                let base_x = (ox * shape.stride) as isize - shape.padding as isize;
                let mut acc = 0.0;
                for ic in 0..shape.in_channels {
                    for ky in 0..shape.kernel_h {
                        for kx in 0..shape.kernel_w {
                            let x =
                                input.get_padded(ic, base_y + ky as isize, base_x + kx as isize);
                            acc += x * weight.get(oc, ic, ky, kx);
                        }
                    }
                }
                out.set(oc, oy, ox, acc);
            }
        }
    }
    Ok(out)
}

/// im2col + GEMM convolution: `W (m×n) · patches (n×OH·OW)`.
///
/// # Errors
///
/// Propagates shape mismatches from [`unroll_input`] and the GEMM.
pub fn conv2d_im2col(
    input: &FeatureMap,
    weight: &Tensor4,
    shape: &ConvShape,
) -> Result<FeatureMap> {
    let patches = unroll_input(input, shape)?;
    let w = weight.to_im2col_matrix();
    let out = w.matmul(&patches)?;
    let oh = shape.output_h();
    let ow = shape.output_w();
    let mut fm = FeatureMap::zeros(shape.out_channels, oh, ow)?;
    for oc in 0..shape.out_channels {
        for p in 0..oh * ow {
            fm.set(oc, p / ow, p % ow, out.get(oc, p));
        }
    }
    Ok(fm)
}

/// Applies a *matrixized* weight (any `m × n` matrix, e.g. a low-rank
/// reconstruction) to an input through im2col. This is the hook the
/// compression layers use to measure end-to-end output error without
/// round-tripping through [`Tensor4`].
///
/// # Errors
///
/// Propagates shape mismatches from [`unroll_input`] and the GEMM.
pub fn conv2d_with_matrix(
    input: &FeatureMap,
    weight_matrix: &Matrix,
    shape: &ConvShape,
) -> Result<FeatureMap> {
    let patches = unroll_input(input, shape)?;
    let out = weight_matrix.matmul(&patches)?;
    let oh = shape.output_h();
    let ow = shape.output_w();
    let mut fm = FeatureMap::zeros(weight_matrix.rows(), oh, ow)?;
    for oc in 0..weight_matrix.rows() {
        for p in 0..oh * ow {
            fm.set(oc, p / ow, p % ow, out.get(oc, p));
        }
    }
    Ok(fm)
}

#[cfg(test)]
mod tests {
    use super::*;
    use imc_linalg::random::SeededRng;

    fn random_feature_map(c: usize, h: usize, w: usize, seed: u64) -> FeatureMap {
        let mut rng = SeededRng::seed_from_u64(seed);
        let data = (0..c * h * w).map(|_| rng.gen_range(-1.0..1.0)).collect();
        FeatureMap::from_vec(c, h, w, data).unwrap()
    }

    fn max_abs_diff(a: &FeatureMap, b: &FeatureMap) -> f64 {
        a.as_slice()
            .iter()
            .zip(b.as_slice().iter())
            .map(|(x, y)| (x - y).abs())
            .fold(0.0, f64::max)
    }

    #[test]
    fn unroll_shape_matches_formula() {
        let shape = ConvShape::square(3, 8, 3, 1, 1, 8).unwrap();
        let input = random_feature_map(3, 8, 8, 1);
        let patches = unroll_input(&input, &shape).unwrap();
        assert_eq!(patches.rows(), 27);
        assert_eq!(patches.cols(), 64);
    }

    #[test]
    fn unroll_rejects_mismatched_input() {
        let shape = ConvShape::square(3, 8, 3, 1, 1, 8).unwrap();
        let wrong_channels = random_feature_map(4, 8, 8, 1);
        assert!(unroll_input(&wrong_channels, &shape).is_err());
        let wrong_size = random_feature_map(3, 9, 8, 1);
        assert!(unroll_input(&wrong_size, &shape).is_err());
    }

    #[test]
    fn im2col_convolution_matches_direct() {
        for (stride, padding, input) in [(1, 1, 8), (2, 1, 8), (1, 0, 7), (2, 0, 9)] {
            let shape = ConvShape::square(3, 5, 3, stride, padding, input).unwrap();
            let weight = Tensor4::kaiming_for(&shape, 42).unwrap();
            let x = random_feature_map(3, input, input, 7);
            let direct = conv2d_direct(&x, &weight, &shape).unwrap();
            let gemm = conv2d_im2col(&x, &weight, &shape).unwrap();
            assert!(
                max_abs_diff(&direct, &gemm) < 1e-10,
                "mismatch at stride={stride} padding={padding}"
            );
        }
    }

    #[test]
    fn conv_with_matrix_matches_tensor_path() {
        let shape = ConvShape::square(4, 6, 3, 1, 1, 6).unwrap();
        let weight = Tensor4::kaiming_for(&shape, 3).unwrap();
        let x = random_feature_map(4, 6, 6, 5);
        let via_tensor = conv2d_im2col(&x, &weight, &shape).unwrap();
        let via_matrix = conv2d_with_matrix(&x, &weight.to_im2col_matrix(), &shape).unwrap();
        assert!(max_abs_diff(&via_tensor, &via_matrix) < 1e-12);
    }

    #[test]
    fn pointwise_convolution_is_a_channel_mix() {
        let shape = ConvShape::square(3, 2, 1, 1, 0, 4).unwrap();
        let mut weight = Tensor4::zeros(2, 3, 1, 1).unwrap();
        weight.set(0, 0, 0, 0, 1.0);
        weight.set(1, 2, 0, 0, 2.0);
        let x = random_feature_map(3, 4, 4, 2);
        let y = conv2d_direct(&x, &weight, &shape).unwrap();
        assert!((y.get(0, 1, 1) - x.get(0, 1, 1)).abs() < 1e-12);
        assert!((y.get(1, 3, 0) - 2.0 * x.get(2, 3, 0)).abs() < 1e-12);
    }

    #[test]
    fn direct_conv_validates_weight_shape() {
        let shape = ConvShape::square(3, 5, 3, 1, 1, 8).unwrap();
        let wrong = Tensor4::kaiming(5, 4, 3, 3, 0).unwrap();
        let x = random_feature_map(3, 8, 8, 0);
        assert!(conv2d_direct(&x, &wrong, &shape).is_err());
    }
}
