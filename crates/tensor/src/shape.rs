//! Static geometry of convolutional and linear layers.

use crate::{Error, Result};

/// The geometry of a 2-D convolution layer applied to a square feature map.
///
/// Shapes are the only thing the cycle/energy models need — the actual weight
/// values only matter for accuracy modelling. All paper experiments use
/// square inputs and square kernels, but rectangular kernels are supported
/// because the SDK parallel-window search explores rectangular windows.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ConvShape {
    /// Number of input channels (`IC`).
    pub in_channels: usize,
    /// Number of output channels (`OC`, the paper's `m`).
    pub out_channels: usize,
    /// Kernel height (`K_h`).
    pub kernel_h: usize,
    /// Kernel width (`K_w`).
    pub kernel_w: usize,
    /// Stride (same in both spatial dimensions).
    pub stride: usize,
    /// Zero-padding (same on all four sides).
    pub padding: usize,
    /// Input feature-map height.
    pub input_h: usize,
    /// Input feature-map width.
    pub input_w: usize,
}

impl ConvShape {
    /// Creates a convolution shape, validating that every parameter is
    /// non-zero and that the (padded) input can host at least one kernel
    /// window.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidShape`] or [`Error::KernelTooLarge`] when the
    /// parameters are inconsistent.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        in_channels: usize,
        out_channels: usize,
        kernel_h: usize,
        kernel_w: usize,
        stride: usize,
        padding: usize,
        input_h: usize,
        input_w: usize,
    ) -> Result<Self> {
        if in_channels == 0 {
            return Err(Error::InvalidShape {
                what: "in_channels must be non-zero",
            });
        }
        if out_channels == 0 {
            return Err(Error::InvalidShape {
                what: "out_channels must be non-zero",
            });
        }
        if kernel_h == 0 || kernel_w == 0 {
            return Err(Error::InvalidShape {
                what: "kernel size must be non-zero",
            });
        }
        if stride == 0 {
            return Err(Error::InvalidShape {
                what: "stride must be non-zero",
            });
        }
        if input_h == 0 || input_w == 0 {
            return Err(Error::InvalidShape {
                what: "input size must be non-zero",
            });
        }
        let shape = Self {
            in_channels,
            out_channels,
            kernel_h,
            kernel_w,
            stride,
            padding,
            input_h,
            input_w,
        };
        if input_h + 2 * padding < kernel_h {
            return Err(Error::KernelTooLarge {
                input: input_h + 2 * padding,
                kernel: kernel_h,
            });
        }
        if input_w + 2 * padding < kernel_w {
            return Err(Error::KernelTooLarge {
                input: input_w + 2 * padding,
                kernel: kernel_w,
            });
        }
        Ok(shape)
    }

    /// Convenience constructor for the common square `K×K`, stride-`s`,
    /// padding-`p` convolution on a square `H×H` input.
    pub fn square(
        in_channels: usize,
        out_channels: usize,
        kernel: usize,
        stride: usize,
        padding: usize,
        input: usize,
    ) -> Result<Self> {
        Self::new(
            in_channels,
            out_channels,
            kernel,
            kernel,
            stride,
            padding,
            input,
            input,
        )
    }

    /// Output feature-map height.
    pub fn output_h(&self) -> usize {
        (self.input_h + 2 * self.padding - self.kernel_h) / self.stride + 1
    }

    /// Output feature-map width.
    pub fn output_w(&self) -> usize {
        (self.input_w + 2 * self.padding - self.kernel_w) / self.stride + 1
    }

    /// Number of sliding-window positions, i.e. output pixels per channel.
    pub fn output_pixels(&self) -> usize {
        self.output_h() * self.output_w()
    }

    /// `n = IC·K_h·K_w`, the im2col input dimension (weight matrix columns in
    /// the paper's `m × n` orientation; crossbar wordlines when mapped).
    pub fn im2col_rows(&self) -> usize {
        self.in_channels * self.kernel_h * self.kernel_w
    }

    /// `m = OC`, the number of output channels (weight matrix rows in the
    /// paper's orientation; crossbar bitlines when mapped).
    pub fn im2col_cols(&self) -> usize {
        self.out_channels
    }

    /// Total number of weight parameters `OC·IC·K_h·K_w`.
    pub fn weight_count(&self) -> usize {
        self.out_channels * self.in_channels * self.kernel_h * self.kernel_w
    }

    /// Number of multiply-accumulate operations for one inference pass.
    pub fn macs(&self) -> usize {
        self.weight_count() * self.output_pixels()
    }

    /// Maximum admissible low-rank `k = min(m, n)` for this layer's weight
    /// matrix.
    pub fn max_rank(&self) -> usize {
        self.im2col_rows().min(self.im2col_cols())
    }

    /// Returns the shape of the same layer applied to a different input size
    /// (used when propagating feature-map sizes through a network).
    pub fn with_input(&self, input_h: usize, input_w: usize) -> Result<Self> {
        Self::new(
            self.in_channels,
            self.out_channels,
            self.kernel_h,
            self.kernel_w,
            self.stride,
            self.padding,
            input_h,
            input_w,
        )
    }
}

/// The geometry of a fully connected (linear) layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LinearShape {
    /// Number of input features.
    pub in_features: usize,
    /// Number of output features.
    pub out_features: usize,
}

impl LinearShape {
    /// Creates a linear-layer shape.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidShape`] when either dimension is zero.
    pub fn new(in_features: usize, out_features: usize) -> Result<Self> {
        if in_features == 0 || out_features == 0 {
            return Err(Error::InvalidShape {
                what: "linear layer dimensions must be non-zero",
            });
        }
        Ok(Self {
            in_features,
            out_features,
        })
    }

    /// Number of weight parameters.
    pub fn weight_count(&self) -> usize {
        self.in_features * self.out_features
    }

    /// Number of multiply-accumulate operations for one inference pass.
    pub fn macs(&self) -> usize {
        self.weight_count()
    }
}

/// Discriminates the two layer kinds that can be mapped onto IMC arrays.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LayerKind {
    /// A convolutional layer.
    Conv,
    /// A fully connected layer.
    Linear,
}

/// A named layer of a network together with its geometry and whether the
/// compression pipeline is allowed to touch it.
///
/// The paper never compresses the first convolution or the final classifier
/// (they are "highly sensitive to perturbations and often processed on
/// digital units"); such layers carry `compressible = false`.
#[derive(Debug, Clone, PartialEq)]
pub struct LayerShape {
    /// Human-readable layer name (e.g. `"block2.conv1"`).
    pub name: String,
    /// Which kind of layer this is.
    pub kind: LayerKind,
    /// Convolution geometry (present when `kind == Conv`).
    pub conv: Option<ConvShape>,
    /// Linear geometry (present when `kind == Linear`).
    pub linear: Option<LinearShape>,
    /// Whether the compression pipeline may compress this layer.
    pub compressible: bool,
}

impl LayerShape {
    /// Creates a convolutional layer entry.
    pub fn conv(name: impl Into<String>, shape: ConvShape, compressible: bool) -> Self {
        Self {
            name: name.into(),
            kind: LayerKind::Conv,
            conv: Some(shape),
            linear: None,
            compressible,
        }
    }

    /// Creates a linear layer entry.
    pub fn linear(name: impl Into<String>, shape: LinearShape, compressible: bool) -> Self {
        Self {
            name: name.into(),
            kind: LayerKind::Linear,
            conv: None,
            linear: Some(shape),
            compressible,
        }
    }

    /// Number of weight parameters in the layer.
    pub fn weight_count(&self) -> usize {
        match self.kind {
            LayerKind::Conv => self.conv.map(|c| c.weight_count()).unwrap_or(0),
            LayerKind::Linear => self.linear.map(|l| l.weight_count()).unwrap_or(0),
        }
    }

    /// Number of MACs for one inference pass through the layer.
    pub fn macs(&self) -> usize {
        match self.kind {
            LayerKind::Conv => self.conv.map(|c| c.macs()).unwrap_or(0),
            LayerKind::Linear => self.linear.map(|l| l.macs()).unwrap_or(0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conv_shape_validates_parameters() {
        assert!(ConvShape::square(0, 16, 3, 1, 1, 32).is_err());
        assert!(ConvShape::square(16, 0, 3, 1, 1, 32).is_err());
        assert!(ConvShape::square(16, 16, 0, 1, 1, 32).is_err());
        assert!(ConvShape::square(16, 16, 3, 0, 1, 32).is_err());
        assert!(ConvShape::square(16, 16, 3, 1, 1, 0).is_err());
        assert!(matches!(
            ConvShape::square(3, 16, 7, 1, 0, 4),
            Err(Error::KernelTooLarge { .. })
        ));
        assert!(ConvShape::square(16, 16, 3, 1, 1, 32).is_ok());
    }

    #[test]
    fn resnet_first_layer_geometry() {
        // ResNet-20 stem: 3x3 conv, 3 -> 16 channels, 32x32 input, padding 1.
        let c = ConvShape::square(3, 16, 3, 1, 1, 32).unwrap();
        assert_eq!(c.output_h(), 32);
        assert_eq!(c.output_w(), 32);
        assert_eq!(c.output_pixels(), 1024);
        assert_eq!(c.im2col_rows(), 27);
        assert_eq!(c.im2col_cols(), 16);
        assert_eq!(c.weight_count(), 432);
        assert_eq!(c.macs(), 432 * 1024);
        assert_eq!(c.max_rank(), 16);
    }

    #[test]
    fn strided_convolution_halves_feature_map() {
        // Down-sampling conv in ResNet-20: stride 2, 32x32 -> 16x16.
        let c = ConvShape::square(16, 32, 3, 2, 1, 32).unwrap();
        assert_eq!(c.output_h(), 16);
        assert_eq!(c.output_w(), 16);
    }

    #[test]
    fn pointwise_convolution_shape() {
        let c = ConvShape::square(64, 128, 1, 1, 0, 8).unwrap();
        assert_eq!(c.im2col_rows(), 64);
        assert_eq!(c.im2col_cols(), 128);
        assert_eq!(c.output_pixels(), 64);
    }

    #[test]
    fn rectangular_kernel_output() {
        let c = ConvShape::new(4, 8, 3, 5, 1, 0, 10, 12).unwrap();
        assert_eq!(c.output_h(), 8);
        assert_eq!(c.output_w(), 8);
        assert_eq!(c.im2col_rows(), 4 * 15);
    }

    #[test]
    fn with_input_propagates_feature_map_size() {
        let c = ConvShape::square(16, 16, 3, 1, 1, 32).unwrap();
        let half = c.with_input(16, 16).unwrap();
        assert_eq!(half.output_pixels(), 256);
        assert_eq!(half.in_channels, 16);
    }

    #[test]
    fn linear_shape_and_counts() {
        let l = LinearShape::new(64, 10).unwrap();
        assert_eq!(l.weight_count(), 640);
        assert_eq!(l.macs(), 640);
        assert!(LinearShape::new(0, 10).is_err());
    }

    #[test]
    fn layer_shape_delegates_counts() {
        let conv = ConvShape::square(16, 32, 3, 1, 1, 16).unwrap();
        let layer = LayerShape::conv("block1.conv0", conv, true);
        assert_eq!(layer.weight_count(), conv.weight_count());
        assert_eq!(layer.macs(), conv.macs());
        assert_eq!(layer.kind, LayerKind::Conv);

        let lin = LinearShape::new(256, 100).unwrap();
        let layer = LayerShape::linear("fc", lin, false);
        assert_eq!(layer.weight_count(), 25_600);
        assert!(!layer.compressible);
    }
}
