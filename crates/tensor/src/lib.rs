//! Convolution tensors, layer-shape arithmetic and im2col matrixization.
//!
//! The IMC mapping and compression layers of this workspace reason about
//! convolutional layers through two representations:
//!
//! * [`ConvShape`] — the static geometry of a convolution (channels, kernel,
//!   stride, padding, input size) and everything that can be derived from it
//!   (output size, im2col matrix dimensions, MAC counts).
//! * [`Tensor4`] — an owned `OC × IC × KH × KW` weight tensor together with
//!   the im2col matrixization that turns it into the `m × n` weight matrix
//!   `W` of the paper (`m` = output channels, `n` = `IC·KH·KW`).
//!
//! The crate also provides input-side im2col ([`im2col::unroll_input`]) used
//! by the reference convolution in `imc-nn`, which lets the test-suite verify
//! that matrixized weights compute exactly the same outputs as a direct
//! convolution.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod im2col;
pub mod shape;
pub mod tensor;

pub use im2col::{conv2d_direct, conv2d_im2col, unroll_input};
pub use shape::{ConvShape, LayerKind, LayerShape, LinearShape};
pub use tensor::{FeatureMap, Tensor4};

/// Errors produced by the tensor layer.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum Error {
    /// A shape parameter (channel count, kernel size, stride, …) is zero or
    /// otherwise inconsistent.
    InvalidShape {
        /// Description of the offending parameter.
        what: &'static str,
    },
    /// The provided buffer length does not match the tensor shape.
    DimensionMismatch {
        /// Expected number of elements.
        expected: usize,
        /// Provided number of elements.
        actual: usize,
    },
    /// The kernel (plus padding) does not fit into the input feature map.
    KernelTooLarge {
        /// Effective input extent (input + 2·padding).
        input: usize,
        /// Kernel extent.
        kernel: usize,
    },
    /// An error bubbled up from the linear-algebra layer.
    Linalg(imc_linalg::Error),
}

impl core::fmt::Display for Error {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Error::InvalidShape { what } => write!(f, "invalid shape parameter: {what}"),
            Error::DimensionMismatch { expected, actual } => {
                write!(f, "expected {expected} elements, got {actual}")
            }
            Error::KernelTooLarge { input, kernel } => write!(
                f,
                "kernel extent {kernel} exceeds padded input extent {input}"
            ),
            Error::Linalg(e) => write!(f, "linear algebra error: {e}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Linalg(e) => Some(e),
            _ => None,
        }
    }
}

impl From<imc_linalg::Error> for Error {
    fn from(e: imc_linalg::Error) -> Self {
        Error::Linalg(e)
    }
}

/// Convenient result alias used throughout the crate.
pub type Result<T> = core::result::Result<T, Error>;
