//! Synthetic classification dataset.
//!
//! A stand-in for CIFAR used by the end-to-end training demonstration: each
//! class is a Gaussian cluster in feature space (optionally arranged on a
//! ring so that neighbouring classes overlap and the task is not trivially
//! separable). The dataset is fully determined by its seed.

use imc_linalg::random::SeededRng;

use imc_linalg::random::normal_sample;

use crate::{Error, Result};

/// One labelled sample: a feature vector and its class index.
#[derive(Debug, Clone, PartialEq)]
pub struct Sample {
    /// Feature vector.
    pub features: Vec<f64>,
    /// Class label in `0..classes`.
    pub label: usize,
}

/// A deterministic synthetic classification dataset split into train and test
/// partitions.
#[derive(Debug, Clone)]
pub struct SyntheticDataset {
    classes: usize,
    features: usize,
    train: Vec<Sample>,
    test: Vec<Sample>,
}

impl SyntheticDataset {
    /// Generates a dataset.
    ///
    /// * `classes` — number of classes (≥ 2).
    /// * `features` — feature dimensionality.
    /// * `train_per_class` / `test_per_class` — samples per class.
    /// * `noise` — intra-class standard deviation relative to the unit
    ///   inter-class spacing; larger values make the task harder.
    /// * `seed` — RNG seed; identical seeds give identical datasets.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] for degenerate parameters.
    pub fn generate(
        classes: usize,
        features: usize,
        train_per_class: usize,
        test_per_class: usize,
        noise: f64,
        seed: u64,
    ) -> Result<Self> {
        if classes < 2 {
            return Err(Error::InvalidConfig {
                what: "at least two classes are required".to_owned(),
            });
        }
        if features == 0 || train_per_class == 0 || test_per_class == 0 {
            return Err(Error::InvalidConfig {
                what: "features and per-class sample counts must be non-zero".to_owned(),
            });
        }
        if noise <= 0.0 {
            return Err(Error::InvalidConfig {
                what: "noise must be positive".to_owned(),
            });
        }
        let mut rng = SeededRng::seed_from_u64(seed);
        // Class means: random unit-ish directions scaled to unit spacing.
        let means: Vec<Vec<f64>> = (0..classes)
            .map(|_| {
                let v: Vec<f64> = (0..features).map(|_| normal_sample(&mut rng)).collect();
                let norm = v.iter().map(|x| x * x).sum::<f64>().sqrt().max(1e-9);
                v.into_iter().map(|x| x / norm).collect()
            })
            .collect();

        let draw = |count: usize, rng: &mut SeededRng| -> Vec<Sample> {
            let mut out = Vec::with_capacity(count * classes);
            for (label, mean) in means.iter().enumerate() {
                for _ in 0..count {
                    let features = mean
                        .iter()
                        .map(|&m| m + noise * normal_sample(rng))
                        .collect();
                    out.push(Sample { features, label });
                }
            }
            out
        };
        let mut train = draw(train_per_class, &mut rng);
        let test = draw(test_per_class, &mut rng);
        // Shuffle the training partition so mini-batches mix classes.
        for i in (1..train.len()).rev() {
            let j = rng.gen_range(0..=i);
            train.swap(i, j);
        }
        Ok(Self {
            classes,
            features,
            train,
            test,
        })
    }

    /// Number of classes.
    pub fn classes(&self) -> usize {
        self.classes
    }

    /// Feature dimensionality.
    pub fn features(&self) -> usize {
        self.features
    }

    /// Training samples (shuffled).
    pub fn train(&self) -> &[Sample] {
        &self.train
    }

    /// Test samples (grouped by class).
    pub fn test(&self) -> &[Sample] {
        &self.test
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let a = SyntheticDataset::generate(4, 16, 10, 5, 0.3, 7).unwrap();
        let b = SyntheticDataset::generate(4, 16, 10, 5, 0.3, 7).unwrap();
        assert_eq!(a.train(), b.train());
        assert_eq!(a.test(), b.test());
    }

    #[test]
    fn sizes_match_configuration() {
        let d = SyntheticDataset::generate(5, 8, 20, 10, 0.2, 1).unwrap();
        assert_eq!(d.train().len(), 100);
        assert_eq!(d.test().len(), 50);
        assert_eq!(d.classes(), 5);
        assert_eq!(d.features(), 8);
        assert!(d
            .train()
            .iter()
            .all(|s| s.features.len() == 8 && s.label < 5));
    }

    #[test]
    fn invalid_configurations_are_rejected() {
        assert!(SyntheticDataset::generate(1, 8, 10, 10, 0.2, 0).is_err());
        assert!(SyntheticDataset::generate(3, 0, 10, 10, 0.2, 0).is_err());
        assert!(SyntheticDataset::generate(3, 8, 0, 10, 0.2, 0).is_err());
        assert!(SyntheticDataset::generate(3, 8, 10, 0, 0.2, 0).is_err());
        assert!(SyntheticDataset::generate(3, 8, 10, 10, 0.0, 0).is_err());
    }

    #[test]
    fn low_noise_classes_are_well_separated() {
        let d = SyntheticDataset::generate(3, 32, 30, 10, 0.05, 3).unwrap();
        // Nearest-class-mean classification on the test set should be nearly
        // perfect at this noise level.
        let mut means = vec![vec![0.0; 32]; 3];
        let mut counts = [0usize; 3];
        for s in d.train() {
            for (m, &x) in means[s.label].iter_mut().zip(s.features.iter()) {
                *m += x;
            }
            counts[s.label] += 1;
        }
        for (m, &c) in means.iter_mut().zip(counts.iter()) {
            for x in m.iter_mut() {
                *x /= c as f64;
            }
        }
        let mut correct = 0;
        for s in d.test() {
            let best = (0..3)
                .min_by(|&a, &b| {
                    let da: f64 = means[a]
                        .iter()
                        .zip(&s.features)
                        .map(|(m, x)| (m - x) * (m - x))
                        .sum();
                    let db: f64 = means[b]
                        .iter()
                        .zip(&s.features)
                        .map(|(m, x)| (m - x) * (m - x))
                        .sum();
                    da.partial_cmp(&db).unwrap()
                })
                .unwrap();
            if best == s.label {
                correct += 1;
            }
        }
        assert!(correct as f64 / d.test().len() as f64 > 0.95);
    }
}
