//! Architecture descriptions of the networks evaluated in the paper.
//!
//! Only the *geometry* of each layer matters for cycle and energy accounting;
//! the weight values are synthesized separately (see `imc_tensor::Tensor4`).
//! Following the paper, the first convolution and the final classifier are
//! flagged non-compressible.

use imc_tensor::{ConvShape, LayerShape, LinearShape};

use crate::{Error, Result};

/// A full network architecture: an ordered list of layers plus metadata used
/// by the accuracy model.
#[derive(Debug, Clone, PartialEq)]
pub struct NetworkArch {
    /// Human-readable network name (`"ResNet-20"`, `"WRN16-4"`).
    pub name: String,
    /// Dataset the paper evaluates this network on.
    pub dataset: String,
    /// Number of classes of the dataset.
    pub classes: usize,
    /// Uncompressed (4-bit QAT) baseline accuracy reported in the paper, in
    /// percent.
    pub baseline_accuracy: f64,
    /// Ordered layers.
    pub layers: Vec<LayerShape>,
}

impl NetworkArch {
    /// Creates an architecture from parts.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] when the layer list is empty.
    pub fn new(
        name: impl Into<String>,
        dataset: impl Into<String>,
        classes: usize,
        baseline_accuracy: f64,
        layers: Vec<LayerShape>,
    ) -> Result<Self> {
        if layers.is_empty() {
            return Err(Error::InvalidConfig {
                what: "network must have at least one layer".to_owned(),
            });
        }
        Ok(Self {
            name: name.into(),
            dataset: dataset.into(),
            classes,
            baseline_accuracy,
            layers,
        })
    }

    /// The convolutional layers eligible for compression.
    pub fn compressible_convs(&self) -> Vec<(&str, &ConvShape)> {
        self.layers
            .iter()
            .filter(|l| l.compressible)
            .filter_map(|l| l.conv.as_ref().map(|c| (l.name.as_str(), c)))
            .collect()
    }

    /// Total parameter count of the network.
    pub fn parameter_count(&self) -> usize {
        self.layers.iter().map(LayerShape::weight_count).sum()
    }

    /// Total multiply-accumulate count of one inference pass.
    pub fn macs(&self) -> usize {
        self.layers.iter().map(LayerShape::macs).sum()
    }

    /// Parameter count of compressible layers only.
    pub fn compressible_parameter_count(&self) -> usize {
        self.layers
            .iter()
            .filter(|l| l.compressible)
            .map(LayerShape::weight_count)
            .sum()
    }
}

#[allow(clippy::too_many_arguments)] // mirrors the ConvShape parameter list
fn conv(
    name: &str,
    ic: usize,
    oc: usize,
    kernel: usize,
    stride: usize,
    padding: usize,
    input: usize,
    compressible: bool,
) -> LayerShape {
    let shape = ConvShape::square(ic, oc, kernel, stride, padding, input)
        .expect("architecture tables only contain valid shapes");
    LayerShape::conv(name, shape, compressible)
}

/// ResNet-20 for CIFAR-10 (expansion 1: the first basic block has 16
/// input/output channels), as used in the paper.
///
/// Structure: a 3×3 stem, three stages of three basic blocks (two 3×3
/// convolutions each) at 16/32/64 channels and 32/16/8 spatial resolution,
/// global average pooling and a 10-way classifier. Identity shortcuts carry
/// no weights (option-A downsampling).
pub fn resnet20() -> NetworkArch {
    let mut layers = vec![conv("stem", 3, 16, 3, 1, 1, 32, false)];
    // Stage 1: 16 channels at 32x32.
    for block in 0..3 {
        layers.push(conv(
            &format!("stage1.block{block}.conv1"),
            16,
            16,
            3,
            1,
            1,
            32,
            true,
        ));
        layers.push(conv(
            &format!("stage1.block{block}.conv2"),
            16,
            16,
            3,
            1,
            1,
            32,
            true,
        ));
    }
    // Stage 2: 32 channels at 16x16 (first conv downsamples from 32x32).
    layers.push(conv("stage2.block0.conv1", 16, 32, 3, 2, 1, 32, true));
    layers.push(conv("stage2.block0.conv2", 32, 32, 3, 1, 1, 16, true));
    for block in 1..3 {
        layers.push(conv(
            &format!("stage2.block{block}.conv1"),
            32,
            32,
            3,
            1,
            1,
            16,
            true,
        ));
        layers.push(conv(
            &format!("stage2.block{block}.conv2"),
            32,
            32,
            3,
            1,
            1,
            16,
            true,
        ));
    }
    // Stage 3: 64 channels at 8x8 (first conv downsamples from 16x16).
    layers.push(conv("stage3.block0.conv1", 32, 64, 3, 2, 1, 16, true));
    layers.push(conv("stage3.block0.conv2", 64, 64, 3, 1, 1, 8, true));
    for block in 1..3 {
        layers.push(conv(
            &format!("stage3.block{block}.conv1"),
            64,
            64,
            3,
            1,
            1,
            8,
            true,
        ));
        layers.push(conv(
            &format!("stage3.block{block}.conv2"),
            64,
            64,
            3,
            1,
            1,
            8,
            true,
        ));
    }
    layers.push(LayerShape::linear(
        "fc",
        LinearShape::new(64, 10).expect("valid classifier shape"),
        false,
    ));
    NetworkArch::new("ResNet-20", "CIFAR-10", 10, 91.6, layers)
        .expect("architecture table is non-empty")
}

/// Wide ResNet 16-4 for CIFAR-100, as used in the paper.
///
/// Depth 16 with widening factor 4: a 3×3 stem at 16 channels, three groups
/// of two basic blocks (two 3×3 convolutions each) at 64/128/256 channels and
/// 32/16/8 resolution, 1×1 projection shortcuts where the channel count
/// changes, and a 100-way classifier. Projection shortcuts are kept
/// uncompressed (they are small and rank-limited).
pub fn wrn16_4() -> NetworkArch {
    let mut layers = vec![conv("stem", 3, 16, 3, 1, 1, 32, false)];
    // Group 1: 64 channels at 32x32.
    layers.push(conv("group1.block0.conv1", 16, 64, 3, 1, 1, 32, true));
    layers.push(conv("group1.block0.conv2", 64, 64, 3, 1, 1, 32, true));
    layers.push(conv("group1.block0.shortcut", 16, 64, 1, 1, 0, 32, false));
    layers.push(conv("group1.block1.conv1", 64, 64, 3, 1, 1, 32, true));
    layers.push(conv("group1.block1.conv2", 64, 64, 3, 1, 1, 32, true));
    // Group 2: 128 channels at 16x16.
    layers.push(conv("group2.block0.conv1", 64, 128, 3, 2, 1, 32, true));
    layers.push(conv("group2.block0.conv2", 128, 128, 3, 1, 1, 16, true));
    layers.push(conv("group2.block0.shortcut", 64, 128, 1, 2, 0, 32, false));
    layers.push(conv("group2.block1.conv1", 128, 128, 3, 1, 1, 16, true));
    layers.push(conv("group2.block1.conv2", 128, 128, 3, 1, 1, 16, true));
    // Group 3: 256 channels at 8x8.
    layers.push(conv("group3.block0.conv1", 128, 256, 3, 2, 1, 16, true));
    layers.push(conv("group3.block0.conv2", 256, 256, 3, 1, 1, 8, true));
    layers.push(conv("group3.block0.shortcut", 128, 256, 1, 2, 0, 16, false));
    layers.push(conv("group3.block1.conv1", 256, 256, 3, 1, 1, 8, true));
    layers.push(conv("group3.block1.conv2", 256, 256, 3, 1, 1, 8, true));
    layers.push(LayerShape::linear(
        "fc",
        LinearShape::new(256, 100).expect("valid classifier shape"),
        false,
    ));
    NetworkArch::new("WRN16-4", "CIFAR-100", 100, 72.4, layers)
        .expect("architecture table is non-empty")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resnet20_has_nineteen_weight_layers_plus_classifier() {
        let net = resnet20();
        // Stem + 18 block convs + fc.
        assert_eq!(net.layers.len(), 20);
        assert_eq!(net.compressible_convs().len(), 18);
        assert_eq!(net.classes, 10);
    }

    #[test]
    fn resnet20_parameter_count_matches_reference() {
        // The canonical CIFAR ResNet-20 has ~0.27M parameters; without
        // batch-norm and bias terms the conv+fc weights alone are ~0.268M.
        let net = resnet20();
        let params = net.parameter_count();
        assert!(
            (260_000..280_000).contains(&params),
            "unexpected parameter count {params}"
        );
    }

    #[test]
    fn resnet20_macs_match_reference_order() {
        // ~41M MACs for CIFAR ResNet-20.
        let net = resnet20();
        let macs = net.macs();
        assert!(
            (38_000_000..44_000_000).contains(&macs),
            "unexpected MAC count {macs}"
        );
    }

    #[test]
    fn wrn16_4_parameter_count_matches_reference() {
        // WRN16-4 has ~2.7-2.8M parameters (convs + classifier).
        let net = wrn16_4();
        let params = net.parameter_count();
        assert!(
            (2_600_000..2_900_000).contains(&params),
            "unexpected parameter count {params}"
        );
    }

    #[test]
    fn first_and_last_layers_are_not_compressible() {
        for net in [resnet20(), wrn16_4()] {
            assert!(!net.layers.first().unwrap().compressible);
            assert!(!net.layers.last().unwrap().compressible);
        }
    }

    #[test]
    fn feature_map_sizes_are_consistent_with_downsampling() {
        let net = resnet20();
        for (name, shape) in net.compressible_convs() {
            if name.starts_with("stage3") && !name.contains("block0.conv1") {
                assert_eq!(shape.input_h, 8, "{name}");
            }
            if name.starts_with("stage1") {
                assert_eq!(shape.input_h, 32, "{name}");
            }
        }
    }

    #[test]
    fn wrn_channels_are_four_times_wider() {
        let net = wrn16_4();
        let convs = net.compressible_convs();
        let max_oc = convs.iter().map(|(_, c)| c.out_channels).max().unwrap();
        assert_eq!(max_oc, 256);
    }

    #[test]
    fn empty_network_is_rejected() {
        assert!(NetworkArch::new("x", "y", 2, 50.0, vec![]).is_err());
    }
}
