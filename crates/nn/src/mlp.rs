//! A small trainable multi-layer perceptron.
//!
//! This is the *empirical* accuracy substrate of the reproduction: the MLP is
//! trained with plain SGD on the synthetic dataset, its hidden weight matrix
//! is then compressed with the decompositions under study (outside this
//! crate, to keep the dependency graph acyclic), substituted back via
//! [`Mlp::set_hidden_weights`], and re-evaluated. Theorem 1's consequence —
//! group low-rank retains more accuracy than plain low-rank at equal rank —
//! can therefore be demonstrated on a genuinely trained model, not just on
//! reconstruction errors.

use imc_linalg::random::SeededRng;

use imc_linalg::{random::normal_sample, Matrix};

use crate::dataset::Sample;
use crate::{Error, Result};

/// Training hyper-parameters for [`Mlp::train`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrainConfig {
    /// Number of passes over the training set.
    pub epochs: usize,
    /// Learning rate.
    pub learning_rate: f64,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Seed controlling weight initialization and batch order.
    pub seed: u64,
}

impl Default for TrainConfig {
    fn default() -> Self {
        Self {
            epochs: 30,
            learning_rate: 0.1,
            batch_size: 32,
            seed: 0,
        }
    }
}

/// A one-hidden-layer MLP with ReLU activation and softmax cross-entropy
/// loss.
#[derive(Debug, Clone)]
pub struct Mlp {
    w1: Matrix,
    b1: Vec<f64>,
    w2: Matrix,
    b2: Vec<f64>,
}

impl Mlp {
    /// Creates an MLP with Kaiming-initialized weights.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] when any dimension is zero.
    pub fn new(inputs: usize, hidden: usize, classes: usize, seed: u64) -> Result<Self> {
        if inputs == 0 || hidden == 0 || classes < 2 {
            return Err(Error::InvalidConfig {
                what: "MLP dimensions must be non-zero (and classes >= 2)".to_owned(),
            });
        }
        let mut rng = SeededRng::seed_from_u64(seed);
        let std1 = (2.0 / inputs as f64).sqrt();
        let std2 = (2.0 / hidden as f64).sqrt();
        let w1 = Matrix::from_fn(hidden, inputs, |_, _| normal_sample(&mut rng) * std1);
        let w2 = Matrix::from_fn(classes, hidden, |_, _| normal_sample(&mut rng) * std2);
        Ok(Self {
            w1,
            b1: vec![0.0; hidden],
            w2,
            b2: vec![0.0; classes],
        })
    }

    /// The hidden-layer weight matrix (`hidden × inputs`).
    pub fn hidden_weights(&self) -> &Matrix {
        &self.w1
    }

    /// Replaces the hidden-layer weight matrix (e.g. with a low-rank
    /// reconstruction of the trained weights).
    ///
    /// # Errors
    ///
    /// Returns [`Error::ShapeMismatch`] if the shape differs from the current
    /// hidden weights.
    pub fn set_hidden_weights(&mut self, weights: Matrix) -> Result<()> {
        if weights.shape() != self.w1.shape() {
            return Err(Error::ShapeMismatch {
                what: format!("expected {:?}, got {:?}", self.w1.shape(), weights.shape()),
            });
        }
        self.w1 = weights;
        Ok(())
    }

    /// The output-layer weight matrix (`classes × hidden`).
    pub fn output_weights(&self) -> &Matrix {
        &self.w2
    }

    fn forward(&self, x: &[f64]) -> Result<(Vec<f64>, Vec<f64>)> {
        let mut hidden = self.w1.matvec(x)?;
        for (h, b) in hidden.iter_mut().zip(self.b1.iter()) {
            *h = (*h + b).max(0.0);
        }
        let mut logits = self.w2.matvec(&hidden)?;
        for (l, b) in logits.iter_mut().zip(self.b2.iter()) {
            *l += b;
        }
        Ok((hidden, logits))
    }

    /// Predicts the class of one sample.
    ///
    /// # Errors
    ///
    /// Returns a shape mismatch when the feature length is wrong.
    pub fn predict(&self, features: &[f64]) -> Result<usize> {
        let (_, logits) = self.forward(features)?;
        Ok(argmax(&logits))
    }

    /// Classification accuracy (fraction in `[0, 1]`) over a sample slice.
    ///
    /// # Errors
    ///
    /// Returns a shape mismatch when any feature length is wrong.
    pub fn evaluate(&self, samples: &[Sample]) -> Result<f64> {
        if samples.is_empty() {
            return Ok(0.0);
        }
        let mut correct = 0usize;
        for s in samples {
            if self.predict(&s.features)? == s.label {
                correct += 1;
            }
        }
        Ok(correct as f64 / samples.len() as f64)
    }

    /// Mean softmax cross-entropy loss over a sample slice.
    ///
    /// # Errors
    ///
    /// Returns a shape mismatch when any feature length is wrong.
    pub fn loss(&self, samples: &[Sample]) -> Result<f64> {
        if samples.is_empty() {
            return Ok(0.0);
        }
        let mut total = 0.0;
        for s in samples {
            let (_, logits) = self.forward(&s.features)?;
            let probs = softmax(&logits);
            total -= probs[s.label].max(1e-12).ln();
        }
        Ok(total / samples.len() as f64)
    }

    /// Trains the MLP with mini-batch SGD, returning the final training loss.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] for a zero batch size or zero epochs,
    /// and shape mismatches for malformed samples.
    pub fn train(&mut self, samples: &[Sample], config: &TrainConfig) -> Result<f64> {
        if config.batch_size == 0 || config.epochs == 0 {
            return Err(Error::InvalidConfig {
                what: "batch size and epoch count must be non-zero".to_owned(),
            });
        }
        if samples.is_empty() {
            return Err(Error::InvalidConfig {
                what: "training set must not be empty".to_owned(),
            });
        }
        let mut rng = SeededRng::seed_from_u64(config.seed.wrapping_add(0x00C0_FFEE));
        let mut order: Vec<usize> = (0..samples.len()).collect();
        for _epoch in 0..config.epochs {
            // Fisher-Yates shuffle of the visiting order.
            for i in (1..order.len()).rev() {
                let j = rng.gen_range(0..=i);
                order.swap(i, j);
            }
            for batch in order.chunks(config.batch_size) {
                self.sgd_step(samples, batch, config.learning_rate)?;
            }
        }
        self.loss(samples)
    }

    #[allow(clippy::needless_range_loop)] // backprop kernel reads clearer with explicit indices
    fn sgd_step(&mut self, samples: &[Sample], batch: &[usize], lr: f64) -> Result<()> {
        let hidden_dim = self.w1.rows();
        let input_dim = self.w1.cols();
        let classes = self.w2.rows();
        let mut gw1 = Matrix::zeros(hidden_dim, input_dim);
        let mut gb1 = vec![0.0; hidden_dim];
        let mut gw2 = Matrix::zeros(classes, hidden_dim);
        let mut gb2 = vec![0.0; classes];

        for &idx in batch {
            let sample = &samples[idx];
            if sample.features.len() != input_dim {
                return Err(Error::ShapeMismatch {
                    what: format!(
                        "sample has {} features, expected {input_dim}",
                        sample.features.len()
                    ),
                });
            }
            let (hidden, logits) = self.forward(&sample.features)?;
            let mut delta_out = softmax(&logits);
            delta_out[sample.label] -= 1.0;

            // Output layer gradients.
            for c in 0..classes {
                gb2[c] += delta_out[c];
                for h in 0..hidden_dim {
                    gw2.set(c, h, gw2.get(c, h) + delta_out[c] * hidden[h]);
                }
            }
            // Back-propagate through the ReLU.
            for h in 0..hidden_dim {
                if hidden[h] <= 0.0 {
                    continue;
                }
                let mut delta_h = 0.0;
                for c in 0..classes {
                    delta_h += delta_out[c] * self.w2.get(c, h);
                }
                gb1[h] += delta_h;
                for (i, &x) in sample.features.iter().enumerate() {
                    gw1.set(h, i, gw1.get(h, i) + delta_h * x);
                }
            }
        }

        let scale = lr / batch.len() as f64;
        self.w1 = self.w1.sub(&gw1.scale(scale))?;
        self.w2 = self.w2.sub(&gw2.scale(scale))?;
        for (b, g) in self.b1.iter_mut().zip(gb1.iter()) {
            *b -= scale * g;
        }
        for (b, g) in self.b2.iter_mut().zip(gb2.iter()) {
            *b -= scale * g;
        }
        Ok(())
    }
}

fn softmax(logits: &[f64]) -> Vec<f64> {
    let max = logits.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let exps: Vec<f64> = logits.iter().map(|&l| (l - max).exp()).collect();
    let sum: f64 = exps.iter().sum();
    exps.into_iter().map(|e| e / sum).collect()
}

fn argmax(values: &[f64]) -> usize {
    values
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(core::cmp::Ordering::Equal))
        .map(|(i, _)| i)
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::SyntheticDataset;

    #[test]
    fn construction_validates_dimensions() {
        assert!(Mlp::new(0, 8, 3, 0).is_err());
        assert!(Mlp::new(8, 0, 3, 0).is_err());
        assert!(Mlp::new(8, 8, 1, 0).is_err());
        assert!(Mlp::new(8, 8, 3, 0).is_ok());
    }

    #[test]
    fn training_reduces_loss_and_learns_the_task() {
        let data = SyntheticDataset::generate(4, 16, 60, 30, 0.25, 11).unwrap();
        let mut mlp = Mlp::new(16, 32, 4, 3).unwrap();
        let before_acc = mlp.evaluate(data.test()).unwrap();
        let before_loss = mlp.loss(data.train()).unwrap();
        let final_loss = mlp
            .train(
                data.train(),
                &TrainConfig {
                    epochs: 40,
                    learning_rate: 0.1,
                    batch_size: 16,
                    seed: 5,
                },
            )
            .unwrap();
        let after_acc = mlp.evaluate(data.test()).unwrap();
        assert!(final_loss < before_loss);
        assert!(after_acc > before_acc);
        assert!(after_acc > 0.9, "test accuracy {after_acc}");
    }

    #[test]
    fn training_is_deterministic_for_a_fixed_seed() {
        let data = SyntheticDataset::generate(3, 8, 30, 10, 0.3, 2).unwrap();
        let cfg = TrainConfig {
            epochs: 10,
            learning_rate: 0.05,
            batch_size: 8,
            seed: 9,
        };
        let mut a = Mlp::new(8, 16, 3, 7).unwrap();
        let mut b = Mlp::new(8, 16, 3, 7).unwrap();
        a.train(data.train(), &cfg).unwrap();
        b.train(data.train(), &cfg).unwrap();
        assert_eq!(a.hidden_weights(), b.hidden_weights());
    }

    #[test]
    fn set_hidden_weights_validates_shape() {
        let mut mlp = Mlp::new(8, 16, 3, 0).unwrap();
        assert!(mlp.set_hidden_weights(Matrix::zeros(16, 8)).is_ok());
        assert!(mlp.set_hidden_weights(Matrix::zeros(8, 16)).is_err());
    }

    #[test]
    fn corrupting_hidden_weights_hurts_accuracy() {
        let data = SyntheticDataset::generate(4, 16, 60, 30, 0.25, 11).unwrap();
        let mut mlp = Mlp::new(16, 32, 4, 3).unwrap();
        mlp.train(data.train(), &TrainConfig::default()).unwrap();
        let trained_acc = mlp.evaluate(data.test()).unwrap();
        mlp.set_hidden_weights(Matrix::zeros(32, 16)).unwrap();
        let corrupted_acc = mlp.evaluate(data.test()).unwrap();
        assert!(trained_acc > corrupted_acc);
    }

    #[test]
    fn train_rejects_bad_configs() {
        let data = SyntheticDataset::generate(3, 8, 10, 5, 0.3, 1).unwrap();
        let mut mlp = Mlp::new(8, 8, 3, 0).unwrap();
        let bad = TrainConfig {
            batch_size: 0,
            ..TrainConfig::default()
        };
        assert!(mlp.train(data.train(), &bad).is_err());
        let bad = TrainConfig {
            epochs: 0,
            ..TrainConfig::default()
        };
        assert!(mlp.train(data.train(), &bad).is_err());
        assert!(mlp.train(&[], &TrainConfig::default()).is_err());
    }
}
