//! Minimal neural-network substrate for the IMC low-rank compression
//! reproduction.
//!
//! Trained CIFAR checkpoints and GPU-scale quantization-aware training are
//! not available in this offline environment, so this crate provides the two
//! substitutes documented in `DESIGN.md`:
//!
//! * **Architecture descriptions** ([`models`]) — exact per-layer geometry of
//!   ResNet-20 (CIFAR-10) and Wide-ResNet 16-4 (CIFAR-100), the two networks
//!   evaluated in the paper. Cycle and energy results depend only on these
//!   shapes, so they are reproduced faithfully.
//! * **Accuracy modelling** ([`accuracy`]) — a calibrated map from aggregate
//!   weight-reconstruction error (and quantization noise) to classification
//!   accuracy, anchored to the operating points reported in the paper's
//!   Table I, plus a *real* trainable model ([`mlp`]) and synthetic dataset
//!   ([`dataset`]) that demonstrate the same qualitative orderings
//!   empirically (group low-rank ≥ plain low-rank at equal rank, higher rank
//!   ≥ lower rank).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod accuracy;
pub mod dataset;
pub mod mlp;
pub mod models;

pub use accuracy::AccuracyModel;
pub use dataset::SyntheticDataset;
pub use mlp::{Mlp, TrainConfig};
pub use models::{resnet20, wrn16_4, NetworkArch};

/// Errors produced by the neural-network layer.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum Error {
    /// A model or training configuration parameter is invalid.
    InvalidConfig {
        /// Description of the offending parameter.
        what: String,
    },
    /// A provided matrix or sample has an unexpected shape.
    ShapeMismatch {
        /// Description of the mismatch.
        what: String,
    },
    /// An error bubbled up from the linear-algebra layer.
    Linalg(imc_linalg::Error),
    /// An error bubbled up from the tensor layer.
    Tensor(imc_tensor::Error),
}

impl core::fmt::Display for Error {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Error::InvalidConfig { what } => write!(f, "invalid configuration: {what}"),
            Error::ShapeMismatch { what } => write!(f, "shape mismatch: {what}"),
            Error::Linalg(e) => write!(f, "linear algebra error: {e}"),
            Error::Tensor(e) => write!(f, "tensor error: {e}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Linalg(e) => Some(e),
            Error::Tensor(e) => Some(e),
            _ => None,
        }
    }
}

impl From<imc_linalg::Error> for Error {
    fn from(e: imc_linalg::Error) -> Self {
        Error::Linalg(e)
    }
}

impl From<imc_tensor::Error> for Error {
    fn from(e: imc_tensor::Error) -> Self {
        Error::Tensor(e)
    }
}

/// Convenient result alias used throughout the crate.
pub type Result<T> = core::result::Result<T, Error>;
