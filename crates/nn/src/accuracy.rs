//! Calibrated accuracy model.
//!
//! Offline we cannot retrain ResNet-20 / WRN16-4 on CIFAR, so classification
//! accuracy is *modelled* instead of measured (see `DESIGN.md`,
//! "Substitutions"): the model maps an aggregate, parameter-weighted relative
//! weight-reconstruction error to an accuracy drop through a power law
//!
//! ```text
//! accuracy = baseline − sensitivity · errorᵞ        (clamped to chance level)
//! ```
//!
//! with the sensitivity proportional to `ln(classes)` and the exponent
//! calibrated once against the paper's Table I end points (ResNet-20:
//! rank `m/2` ⇒ ≈1 pt drop, rank `m/16` ⇒ ≈14 pt drop; WRN16-4: ≈2.6 pt and
//! ≈27 pt). The same curve is applied to every compression family (low-rank,
//! group low-rank, pattern pruning, quantization) so comparisons between
//! methods remain structurally meaningful even though absolute accuracies are
//! synthetic.

use crate::models::NetworkArch;

/// Power-law exponent calibrated against Table I.
const DEFAULT_EXPONENT: f64 = 4.8;

/// Sensitivity per natural-log of class count, calibrated against Table I.
const SENSITIVITY_PER_LOG_CLASS: f64 = 7.7;

/// The calibrated error → accuracy model for one network/dataset pair.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AccuracyModel {
    /// Uncompressed baseline accuracy in percent.
    pub baseline: f64,
    /// Chance-level accuracy in percent (100 / classes).
    pub chance: f64,
    /// Multiplicative sensitivity of the accuracy drop.
    pub sensitivity: f64,
    /// Power-law exponent of the accuracy drop.
    pub exponent: f64,
}

impl AccuracyModel {
    /// Builds the model for a network architecture using the calibrated
    /// defaults.
    pub fn for_network(arch: &NetworkArch) -> Self {
        let classes = arch.classes.max(2) as f64;
        Self {
            baseline: arch.baseline_accuracy,
            chance: 100.0 / classes,
            sensitivity: SENSITIVITY_PER_LOG_CLASS * classes.ln(),
            exponent: DEFAULT_EXPONENT,
        }
    }

    /// Builds a model with explicit parameters (used by ablations and tests).
    pub fn with_parameters(baseline: f64, chance: f64, sensitivity: f64, exponent: f64) -> Self {
        Self {
            baseline,
            chance,
            sensitivity,
            exponent,
        }
    }

    /// Predicted accuracy (percent) for an aggregate relative reconstruction
    /// error in `[0, 1]`.
    pub fn accuracy_for_error(&self, relative_error: f64) -> f64 {
        let err = relative_error.clamp(0.0, 1.0);
        let drop = self.sensitivity * err.powf(self.exponent);
        (self.baseline - drop).max(self.chance)
    }

    /// Predicted accuracy for a compressed network given per-layer relative
    /// errors and weights (typically the per-layer parameter counts).
    /// Layers with zero total weight fall back to an unweighted mean.
    pub fn accuracy_for_layers(&self, errors_and_weights: &[(f64, f64)]) -> f64 {
        self.accuracy_for_error(aggregate_error(errors_and_weights))
    }

    /// Additional accuracy drop (percentage points) of quantizing weights and
    /// activations to `bits`, relative to the 4-bit baseline the paper uses.
    /// Values follow typical DoReFa results on CIFAR-scale networks.
    pub fn quantization_drop(bits: usize) -> f64 {
        match bits {
            0 | 1 => 11.0,
            2 => 2.2,
            3 => 0.6,
            _ => 0.0,
        }
    }

    /// Predicted accuracy of a `bits`-bit quantized, otherwise uncompressed
    /// model.
    pub fn quantized_accuracy(&self, bits: usize) -> f64 {
        (self.baseline - Self::quantization_drop(bits)).max(self.chance)
    }

    /// Effective relative error of a pattern-pruned layer that keeps
    /// `entries` of the `kernel_elems` kernel positions: the fraction of
    /// weight energy removed is `1 − entries/kernel_elems`, and for
    /// identically distributed weights the relative Frobenius error is its
    /// square root.
    pub fn pattern_pruning_error(entries: usize, kernel_elems: usize) -> f64 {
        if kernel_elems == 0 || entries >= kernel_elems {
            return 0.0;
        }
        (1.0 - entries as f64 / kernel_elems as f64).sqrt()
    }
}

/// Aggregates per-layer `(relative_error, weight)` pairs into one
/// weight-averaged error.
pub fn aggregate_error(errors_and_weights: &[(f64, f64)]) -> f64 {
    if errors_and_weights.is_empty() {
        return 0.0;
    }
    let total_weight: f64 = errors_and_weights.iter().map(|(_, w)| w).sum();
    if total_weight <= 0.0 {
        return errors_and_weights.iter().map(|(e, _)| e).sum::<f64>()
            / errors_and_weights.len() as f64;
    }
    errors_and_weights.iter().map(|(e, w)| e * w).sum::<f64>() / total_weight
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::{resnet20, wrn16_4};

    #[test]
    fn zero_error_gives_baseline_accuracy() {
        let m = AccuracyModel::for_network(&resnet20());
        assert!((m.accuracy_for_error(0.0) - 91.6).abs() < 1e-9);
    }

    #[test]
    fn accuracy_is_monotone_in_error() {
        let m = AccuracyModel::for_network(&resnet20());
        let mut prev = 100.0;
        for i in 0..=20 {
            let acc = m.accuracy_for_error(i as f64 / 20.0);
            assert!(acc <= prev + 1e-12);
            prev = acc;
        }
    }

    #[test]
    fn accuracy_never_drops_below_chance() {
        let m = AccuracyModel::for_network(&wrn16_4());
        assert!(m.accuracy_for_error(1.0) >= 1.0 - 1e-9);
        assert!(m.accuracy_for_error(5.0) >= 1.0 - 1e-9);
    }

    #[test]
    fn calibration_matches_table1_endpoints_for_resnet20() {
        // rank m/2 corresponds to a relative error around 0.59 for the
        // synthetic weights and should drop roughly 1-2 points; rank m/16
        // (error around 0.95) should drop roughly 12-16 points.
        let m = AccuracyModel::for_network(&resnet20());
        let small = m.baseline - m.accuracy_for_error(0.59);
        let large = m.baseline - m.accuracy_for_error(0.95);
        assert!((0.5..3.0).contains(&small), "small drop {small}");
        assert!((10.0..18.0).contains(&large), "large drop {large}");
    }

    #[test]
    fn cifar100_is_more_sensitive_than_cifar10() {
        let r = AccuracyModel::for_network(&resnet20());
        let w = AccuracyModel::for_network(&wrn16_4());
        assert!(w.sensitivity > r.sensitivity);
        let drop_r = r.baseline - r.accuracy_for_error(0.9);
        let drop_w = w.baseline - w.accuracy_for_error(0.9);
        assert!(drop_w > drop_r);
    }

    #[test]
    fn quantization_drop_decreases_with_bits() {
        assert!(AccuracyModel::quantization_drop(1) > AccuracyModel::quantization_drop(2));
        assert!(AccuracyModel::quantization_drop(2) > AccuracyModel::quantization_drop(3));
        assert_eq!(AccuracyModel::quantization_drop(4), 0.0);
        assert_eq!(AccuracyModel::quantization_drop(8), 0.0);
    }

    #[test]
    fn pattern_pruning_error_behaviour() {
        assert_eq!(AccuracyModel::pattern_pruning_error(9, 9), 0.0);
        assert!(AccuracyModel::pattern_pruning_error(1, 9) > 0.9);
        let e4 = AccuracyModel::pattern_pruning_error(4, 9);
        let e6 = AccuracyModel::pattern_pruning_error(6, 9);
        assert!(e4 > e6);
        assert_eq!(AccuracyModel::pattern_pruning_error(3, 0), 0.0);
    }

    #[test]
    fn aggregate_error_weights_layers() {
        let agg = aggregate_error(&[(0.2, 100.0), (0.8, 300.0)]);
        assert!((agg - 0.65).abs() < 1e-12);
        assert_eq!(aggregate_error(&[]), 0.0);
        // Zero weights fall back to the unweighted mean.
        let agg = aggregate_error(&[(0.2, 0.0), (0.6, 0.0)]);
        assert!((agg - 0.4).abs() < 1e-12);
    }

    #[test]
    fn layer_aggregation_feeds_the_curve() {
        let m = AccuracyModel::for_network(&resnet20());
        let acc = m.accuracy_for_layers(&[(0.3, 1000.0), (0.4, 2000.0)]);
        let direct = m.accuracy_for_error(aggregate_error(&[(0.3, 1000.0), (0.4, 2000.0)]));
        assert!((acc - direct).abs() < 1e-12);
    }
}
