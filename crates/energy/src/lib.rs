//! NeuroSIM/ConvMapSIM-style energy simulator for IMC crossbar inference
//! (the substrate behind the paper's Fig. 7).
//!
//! The model decomposes the energy of one array access into the terms the
//! NeuroSIM papers identify as dominant for RRAM crossbars — DAC/wordline
//! drive, cell read (MAC), ADC conversion and sample-and-hold — and charges
//! the peripheral circuitry that a compression method requires (input
//! realignment multiplexers for pattern pruning, zero-skip wordline logic for
//! row-skipping methods). Fig. 7 of the paper reports energy *normalized to
//! the im2col baseline*, so the absolute device constants cancel; what
//! matters — and what this model reproduces — is how each method's access
//! schedule (active rows × occupied columns × loads) and peripheral overheads
//! scale with the array size.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod params;

pub use params::EnergyParams;

/// Which peripheral assistance an access schedule relies on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PeripheralKind {
    /// No peripheral assistance (dense mappings, low-rank factors).
    None,
    /// Zero-skipping wordline drivers.
    ZeroSkip,
    /// Input-realignment multiplexers/demultiplexers.
    Mux,
}

/// The access schedule of one mapped weight region: everything the energy
/// model needs to know about a layer (or one stage of a compressed layer).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AccessSchedule {
    /// Wordlines activated per load.
    pub active_rows: usize,
    /// Logical bitlines read per load.
    pub active_cols: usize,
    /// Physical columns per logical weight column (weight bits / cell bits).
    pub cols_per_weight: usize,
    /// Input-vector loads per inference.
    pub loads: u64,
    /// Peripheral circuitry exercised on every load.
    pub peripheral: PeripheralKind,
}

impl AccessSchedule {
    /// Creates a schedule with a single physical column per logical column
    /// and no peripheral assistance.
    pub fn dense(active_rows: usize, active_cols: usize, loads: u64) -> Self {
        Self {
            active_rows,
            active_cols,
            cols_per_weight: 1,
            loads,
            peripheral: PeripheralKind::None,
        }
    }

    /// Energy (in the parameter set's units, picojoules by default) of
    /// executing this schedule once per inference.
    pub fn energy(&self, params: &EnergyParams) -> f64 {
        let physical_cols = (self.active_cols * self.cols_per_weight) as f64;
        let rows = self.active_rows as f64;
        let per_load = rows * params.dac_per_row
            + physical_cols * params.adc_per_column
            + rows * physical_cols * params.mac_per_cell
            + physical_cols * params.sample_hold_per_column
            + match self.peripheral {
                PeripheralKind::None => 0.0,
                PeripheralKind::ZeroSkip => rows * params.zero_skip_per_row,
                PeripheralKind::Mux => {
                    physical_cols * params.mux_per_column + rows * params.demux_per_row
                }
            };
        per_load * self.loads as f64
    }
}

/// Total energy of a collection of access schedules (e.g. all layers of a
/// network, or both stages of every compressed layer).
pub fn total_energy(schedules: &[AccessSchedule], params: &EnergyParams) -> f64 {
    schedules.iter().map(|s| s.energy(params)).sum()
}

/// Energy of `schedules` normalized to a `reference` energy (Fig. 7 style).
/// Returns 0 when the reference is non-positive.
pub fn normalized_energy(
    schedules: &[AccessSchedule],
    reference: f64,
    params: &EnergyParams,
) -> f64 {
    if reference <= 0.0 {
        return 0.0;
    }
    total_energy(schedules, params) / reference
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dense_schedule_energy_is_positive_and_linear_in_loads() {
        let params = EnergyParams::default();
        let one = AccessSchedule::dense(64, 64, 1).energy(&params);
        let thousand = AccessSchedule::dense(64, 64, 1000).energy(&params);
        assert!(one > 0.0);
        assert!((thousand - 1000.0 * one).abs() < 1e-9 * thousand);
    }

    #[test]
    fn adc_dominates_row_drive_for_default_parameters() {
        // NeuroSIM consistently reports ADC conversion as the dominant term;
        // the default parameter set preserves that ordering.
        let params = EnergyParams::default();
        assert!(params.adc_per_column > 10.0 * params.dac_per_row);
    }

    #[test]
    fn mux_peripheral_adds_energy_over_dense() {
        let params = EnergyParams::default();
        let dense = AccessSchedule::dense(48, 16, 100).energy(&params);
        let mut with_mux = AccessSchedule::dense(48, 16, 100);
        with_mux.peripheral = PeripheralKind::Mux;
        assert!(with_mux.energy(&params) > dense);
    }

    #[test]
    fn zero_skip_overhead_is_smaller_than_mux_overhead() {
        let params = EnergyParams::default();
        let mut zs = AccessSchedule::dense(48, 16, 100);
        zs.peripheral = PeripheralKind::ZeroSkip;
        let mut mux = AccessSchedule::dense(48, 16, 100);
        mux.peripheral = PeripheralKind::Mux;
        let dense = AccessSchedule::dense(48, 16, 100).energy(&params);
        assert!(zs.energy(&params) - dense < mux.energy(&params) - dense);
    }

    #[test]
    fn fewer_active_rows_save_energy() {
        let params = EnergyParams::default();
        let full = AccessSchedule::dense(144, 16, 1024).energy(&params);
        let skipped = AccessSchedule::dense(48, 16, 1024).energy(&params);
        assert!(skipped < full);
    }

    #[test]
    fn wider_weights_cost_more_adc_energy() {
        let params = EnergyParams::default();
        let mut narrow = AccessSchedule::dense(64, 32, 10);
        narrow.cols_per_weight = 1;
        let mut wide = AccessSchedule::dense(64, 32, 10);
        wide.cols_per_weight = 2;
        assert!(wide.energy(&params) > narrow.energy(&params));
    }

    #[test]
    fn totals_and_normalization() {
        let params = EnergyParams::default();
        let a = AccessSchedule::dense(10, 10, 5);
        let b = AccessSchedule::dense(20, 20, 5);
        let total = total_energy(&[a, b], &params);
        assert!((total - (a.energy(&params) + b.energy(&params))).abs() < 1e-9);
        let norm = normalized_energy(&[a, b], total, &params);
        assert!((norm - 1.0).abs() < 1e-12);
        assert_eq!(normalized_energy(&[a], 0.0, &params), 0.0);
    }
}
