//! Energy model parameters.

/// Per-operation energy constants of the crossbar and its periphery, in
/// picojoules.
///
/// The defaults are representative 32 nm RRAM values in the range reported by
/// the DNN+NeuroSIM papers (wordline DAC drive well below a picojoule, a few
/// picojoules per ADC conversion, tens of femtojoules per cell read). The
/// absolute values only set the scale; the Fig. 7 experiment normalizes them
/// away and reports ratios.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyParams {
    /// Energy to drive one wordline (DAC + driver) for one load.
    pub dac_per_row: f64,
    /// Energy of one ADC conversion on one physical column.
    pub adc_per_column: f64,
    /// Energy of one cell multiply-accumulate (read current integration).
    pub mac_per_cell: f64,
    /// Energy of sample-and-hold on one physical column.
    pub sample_hold_per_column: f64,
    /// Extra energy per physical column of the input-realignment MUX network
    /// required by pattern pruning.
    pub mux_per_column: f64,
    /// Extra energy per wordline of the DEMUX/driver realignment required by
    /// pattern pruning.
    pub demux_per_row: f64,
    /// Extra energy per wordline of the zero-skip detection logic required by
    /// row-skipping methods.
    pub zero_skip_per_row: f64,
}

impl Default for EnergyParams {
    fn default() -> Self {
        Self {
            dac_per_row: 0.08,
            adc_per_column: 1.6,
            mac_per_cell: 0.012,
            sample_hold_per_column: 0.05,
            mux_per_column: 0.35,
            demux_per_row: 0.06,
            zero_skip_per_row: 0.03,
        }
    }
}

impl EnergyParams {
    /// A parameter set with every peripheral term zeroed, useful for
    /// isolating the pure crossbar energy in ablations.
    pub fn without_peripherals(&self) -> Self {
        Self {
            mux_per_column: 0.0,
            demux_per_row: 0.0,
            zero_skip_per_row: 0.0,
            ..*self
        }
    }

    /// A parameter set rescaled for an ADC resolution of `bits`, relative to
    /// the 4-bit default the conversion constant is calibrated at. The
    /// per-conversion cost is modelled linear in the bit width, matching the
    /// bit-serial cycle model of the evaluation layers (each extra input bit
    /// costs one extra conversion pass, not an exponential comparator tree).
    pub fn with_adc_bits(&self, bits: usize) -> Self {
        Self {
            adc_per_column: self.adc_per_column * bits as f64 / 4.0,
            ..*self
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_positive() {
        let p = EnergyParams::default();
        for v in [
            p.dac_per_row,
            p.adc_per_column,
            p.mac_per_cell,
            p.sample_hold_per_column,
            p.mux_per_column,
            p.demux_per_row,
            p.zero_skip_per_row,
        ] {
            assert!(v > 0.0);
        }
    }

    #[test]
    fn without_peripherals_zeroes_only_peripheral_terms() {
        let p = EnergyParams::default().without_peripherals();
        assert_eq!(p.mux_per_column, 0.0);
        assert_eq!(p.demux_per_row, 0.0);
        assert_eq!(p.zero_skip_per_row, 0.0);
        assert!(p.adc_per_column > 0.0);
    }

    #[test]
    fn with_adc_bits_scales_only_the_conversion_term() {
        let base = EnergyParams::default();
        let p = base.with_adc_bits(8);
        assert_eq!(p.adc_per_column, base.adc_per_column * 2.0);
        assert_eq!(p.dac_per_row, base.dac_per_row);
        assert_eq!(p.mux_per_column, base.mux_per_column);
        assert_eq!(base.with_adc_bits(4), base, "4 bits is the identity");
    }
}
