//! Store bench: what a server restart costs with and without a persistent
//! `--store` directory behind it, tracked in `BENCH_results.json` under the
//! `store` group.
//!
//! * `store_fig6_cold_compute` — a fresh server with no store: bind,
//!   connect, compute the fig6 sweep from scratch. The price every restart
//!   paid before the store existed.
//! * `store_fig6_restart_store_hit` — a fresh server per iteration over a
//!   pre-warmed store directory: empty memory caches force the request to
//!   the disk tier, so this measures open-store + read + re-verify +
//!   stream. The ≥10× restart acceptance gate of the store issue compares
//!   this against the cold compute.
//! * `store_fig6_memory_cache_hit` — one long-lived store-backed server
//!   serving identical repeats from the retained-bytes tier, for the
//!   store-vs-memory gap.
//!
//! All three return byte-identical responses, equal to the in-process run
//! (asserted here before measuring).

use imc_bench::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use imc_nn::resnet20;
use imc_sim::experiments::{fig6_experiment, DEFAULT_SEED};
use imc_sim::{ServeClient, ServeConfig, Server};

fn bench_store_tiers(c: &mut Criterion) {
    let arch = resnet20();
    let spec_json = fig6_experiment(&arch, 64, DEFAULT_SEED)
        .to_spec()
        .expect("fig6 serializes")
        .to_json();
    let golden = fig6_experiment(&arch, 64, DEFAULT_SEED)
        .run()
        .expect("library sweep succeeds")
        .to_jsonl()
        .expect("library run serializes");

    let store_dir = std::env::temp_dir().join(format!("imc_bench_store_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&store_dir);

    let cold_compute = || {
        let server = Server::bind(ServeConfig::new()).expect("server binds");
        let response = ServeClient::new(server.local_addr().to_string())
            .post_run(&spec_json)
            .expect("cold request succeeds");
        drop(server);
        response
    };
    let restart_store_hit = || {
        let server = Server::bind(ServeConfig::new().store_dir(&store_dir)).expect("server binds");
        let response = ServeClient::new(server.local_addr().to_string())
            .post_run(&spec_json)
            .expect("store-backed request succeeds");
        assert_eq!(
            server.metrics().runs_computed,
            0,
            "restart must not recompute"
        );
        drop(server);
        response
    };

    // Warm the store once, keep a long-lived server for the memory tier,
    // and pin the bit-identity contract before timing: every tier returns
    // the in-process bytes.
    let warm_server = Server::bind(ServeConfig::new().store_dir(&store_dir)).expect("server binds");
    let warm_client = ServeClient::new(warm_server.local_addr().to_string());
    assert_eq!(warm_client.post_run(&spec_json).expect("warms"), golden);
    assert_eq!(cold_compute(), golden);
    assert_eq!(restart_store_hit(), golden);

    c.bench_function("store_fig6_cold_compute", |b| {
        b.iter(|| black_box(cold_compute()));
    });
    c.bench_function("store_fig6_restart_store_hit", |b| {
        b.iter(|| black_box(restart_store_hit()));
    });
    c.bench_function("store_fig6_memory_cache_hit", |b| {
        b.iter(|| black_box(warm_client.post_run(&spec_json).expect("request")));
    });

    let metrics = warm_server.metrics();
    println!(
        "warm server after measurement: {} computed, {} store hits, {} cache hits",
        metrics.runs_computed, metrics.store_hits, metrics.response_cache_hits
    );
    drop(warm_server);
    let _ = std::fs::remove_dir_all(&store_dir);
}

criterion_group!(store, bench_store_tiers);
criterion_main!(store);
