//! Table I bench: regenerates the ResNet-20 half of Table I once (printed to
//! stdout) and benchmarks the cycle-model sweep that produces its cycle
//! columns.

use imc_bench::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use imc_array::ArrayConfig;
use imc_core::{lowrank_im2col_cycles, search_lowrank_window, RankSpec};
use imc_nn::resnet20;
use imc_sim::experiments::{table1, DEFAULT_SEED};
use imc_sim::report::table1_markdown;

fn table1_cycle_sweep(array: &ArrayConfig) -> u64 {
    let arch = resnet20();
    let mut total = 0u64;
    for (_, shape) in arch.compressible_convs() {
        for groups in [1usize, 2, 4, 8] {
            for rank in RankSpec::paper_divisors() {
                let per_group_cols = shape.im2col_rows() / groups;
                let max_rank = shape.out_channels.min(per_group_cols).max(1);
                let k = rank.resolve(shape.out_channels, max_rank);
                total += search_lowrank_window(shape, k, groups, array)
                    .expect("search succeeds")
                    .total();
                total += lowrank_im2col_cycles(shape, k, groups, array)
                    .expect("valid config")
                    .total();
            }
        }
    }
    total
}

fn bench_table1(c: &mut Criterion) {
    // Regenerate the artifact once so `cargo bench` reproduces the table.
    let rows = table1(&resnet20(), DEFAULT_SEED).expect("Table I sweep succeeds");
    println!(
        "\n== Table I (ResNet-20, regenerated) ==\n{}",
        table1_markdown(&rows)
    );

    let array = ArrayConfig::square(64).expect("valid array");
    c.bench_function("table1_cycle_sweep_resnet20_64", |b| {
        b.iter(|| table1_cycle_sweep(black_box(&array)))
    });
}

criterion_group!(table1_bench, bench_table1);
criterion_main!(table1_bench);
