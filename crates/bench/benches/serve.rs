//! Serve bench: what a client pays for the same fig6 sweep at the three
//! temperatures the evaluation server offers, tracked in
//! `BENCH_results.json` under the `serve` group.
//!
//! * `serve_fig6_cold_request` — a fresh server per iteration: bind,
//!   connect, compute the sweep on a cold session, stream it back. The
//!   process-per-sweep baseline every client paid before `imc serve`.
//! * `serve_fig6_warm_session_request` — one long-lived server with the
//!   response cache disabled: every request recomputes, but on the warm
//!   shared session, so the decompositions are all cache hits.
//! * `serve_fig6_warm_response_cache` — the same server with the response
//!   cache on: an identical repeat request is served straight from the
//!   retained bytes.
//!
//! All three return byte-identical responses, equal to the in-process run
//! (asserted here before measuring). The ≥5× warm-vs-cold acceptance gate
//! of the server issue reads these numbers.

use imc_bench::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use imc_nn::resnet20;
use imc_sim::experiments::{fig6_experiment, DEFAULT_SEED};
use imc_sim::{ServeClient, ServeConfig, Server};

fn bench_serve_temperatures(c: &mut Criterion) {
    let arch = resnet20();
    let spec_json = fig6_experiment(&arch, 64, DEFAULT_SEED)
        .to_spec()
        .expect("fig6 serializes")
        .to_json();
    let golden = fig6_experiment(&arch, 64, DEFAULT_SEED)
        .run()
        .expect("library sweep succeeds")
        .to_jsonl()
        .expect("library run serializes");

    let cold_request = || {
        let server = Server::bind(ServeConfig::new()).expect("server binds");
        let response = ServeClient::new(server.local_addr().to_string())
            .post_run(&spec_json)
            .expect("cold request succeeds");
        drop(server);
        response
    };

    let warm_server =
        Server::bind(ServeConfig::new().response_cache_bytes(0)).expect("server binds");
    let warm_client = ServeClient::new(warm_server.local_addr().to_string());
    let cached_server = Server::bind(ServeConfig::new()).expect("server binds");
    let cached_client = ServeClient::new(cached_server.local_addr().to_string());

    // Warm both servers and pin the bit-identity contract before timing:
    // every temperature returns the in-process bytes.
    assert_eq!(cold_request(), golden);
    assert_eq!(warm_client.post_run(&spec_json).expect("warms"), golden);
    assert_eq!(cached_client.post_run(&spec_json).expect("warms"), golden);

    c.bench_function("serve_fig6_cold_request", |b| {
        b.iter(|| black_box(cold_request()));
    });
    c.bench_function("serve_fig6_warm_session_request", |b| {
        b.iter(|| black_box(warm_client.post_run(&spec_json).expect("request")));
    });
    c.bench_function("serve_fig6_warm_response_cache", |b| {
        b.iter(|| black_box(cached_client.post_run(&spec_json).expect("request")));
    });

    let metrics = warm_server.metrics();
    println!(
        "warm server after measurement: {} computed, {} coalesced, {} cache hits",
        metrics.runs_computed, metrics.runs_coalesced, metrics.response_cache_hits
    );
}

criterion_group!(serve, bench_serve_temperatures);
criterion_main!(serve);
