//! Fig. 8 bench: regenerates the quantization comparison once and benchmarks
//! the quantized-layer cycle model across the 1–4-bit sweep.

use imc_bench::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use imc_array::ArrayConfig;
use imc_nn::resnet20;
use imc_quant::{quantized_conv_cycles, QuantConfig};
use imc_sim::experiments::{fig8, DEFAULT_SEED};
use imc_sim::report::fig8_markdown;

fn quant_cycle_sweep(array: &ArrayConfig) -> f64 {
    let arch = resnet20();
    let mut total = 0.0;
    for (_, shape) in arch.compressible_convs() {
        for cfg in QuantConfig::paper_sweep() {
            total += quantized_conv_cycles(shape, array, &cfg).expect("valid config");
        }
    }
    total
}

fn bench_fig8(c: &mut Criterion) {
    let panels = fig8(DEFAULT_SEED).expect("quantization comparison succeeds");
    println!("\n== Fig. 8 (regenerated) ==\n{}", fig8_markdown(&panels));

    let array = ArrayConfig::square(64).expect("valid array");
    c.bench_function("fig8_quantized_cycle_sweep_resnet20_64", |b| {
        b.iter(|| quant_cycle_sweep(black_box(&array)))
    });
}

criterion_group!(fig8_bench, bench_fig8);
criterion_main!(fig8_bench);
