//! Fig. 6 bench: regenerates the ResNet-20 / 64×64 panel once and benchmarks
//! the pruning-baseline cycle sweep it is compared against.

use imc_bench::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use imc_array::ArrayConfig;
use imc_nn::resnet20;
use imc_pruning::{PairsPruning, PatternPruning};
use imc_sim::experiments::{fig6, DEFAULT_SEED};
use imc_sim::report::fig6_markdown;
use imc_tensor::Tensor4;

fn pruning_cycle_sweep(array: &ArrayConfig) -> u64 {
    let arch = resnet20();
    let mut total = 0u64;
    for (index, (_, shape)) in arch.compressible_convs().iter().enumerate() {
        let weight = Tensor4::kaiming_for(shape, index as u64).expect("valid weight");
        for entries in 1..=8 {
            total += PatternPruning::new(entries)
                .expect("valid entries")
                .map_layer(shape, *array)
                .cycles();
            total += PairsPruning::new(entries)
                .expect("valid entries")
                .map_layer(shape, &weight, *array)
                .expect("mapping succeeds")
                .cycles();
        }
    }
    total
}

fn bench_fig6(c: &mut Criterion) {
    let panel = fig6(&resnet20(), 64, DEFAULT_SEED).expect("panel evaluation succeeds");
    println!(
        "\n== Fig. 6 (ResNet-20, 64x64, regenerated) ==\n{}",
        fig6_markdown(&panel)
    );

    let array = ArrayConfig::square(64).expect("valid array");
    c.bench_function("fig6_pruning_cycle_sweep_resnet20_64", |b| {
        b.iter(|| pruning_cycle_sweep(black_box(&array)))
    });
}

criterion_group!(fig6_bench, bench_fig6);
criterion_main!(fig6_bench);
