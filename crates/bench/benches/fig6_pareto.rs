//! Fig. 6 bench: regenerates the ResNet-20 / 64×64 panel once, benchmarks
//! the pruning-baseline cycle sweep it is compared against, and measures the
//! end-to-end panel sweep in its pre-optimization configuration (serial, no
//! decomposition cache) against the optimized default (parallel, cached) —
//! the before/after pair tracked in `BENCH_results.json`.

use imc_bench::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use imc_array::ArrayConfig;
use imc_core::CompressionConfig;
use imc_nn::resnet20;
use imc_pruning::{PairsPruning, PatternPruning};
use imc_sim::experiments::{fig6, DEFAULT_SEED};
use imc_sim::report::fig6_markdown;
use imc_sim::runtime::default_parallelism;
use imc_sim::{CompressionMethod, Experiment, ExperimentRun};
use imc_tensor::Tensor4;

fn pruning_cycle_sweep(array: &ArrayConfig) -> u64 {
    let arch = resnet20();
    let mut total = 0u64;
    for (index, (_, shape)) in arch.compressible_convs().iter().enumerate() {
        let weight = Tensor4::kaiming_for(shape, index as u64).expect("valid weight");
        for entries in 1..=8 {
            total += PatternPruning::new(entries)
                .expect("valid entries")
                .map_layer(shape, *array)
                .cycles();
            total += PairsPruning::new(entries)
                .expect("valid entries")
                .map_layer(shape, &weight, *array)
                .expect("mapping succeeds")
                .cycles();
        }
    }
    total
}

/// The Fig. 6 method grid (baseline + low-rank configs + PatDNN + PAIRS).
/// Kept in one place so the sweep benches and their cell count cannot drift
/// apart if the grid is ever resized.
fn fig6_methods() -> Vec<CompressionMethod> {
    let mut methods = vec![CompressionMethod::Uncompressed { sdk: false }];
    methods.extend(
        CompressionConfig::table1_grid(true)
            .into_iter()
            .map(CompressionMethod::LowRank),
    );
    methods.extend((1..=8).map(|entries| CompressionMethod::PatternPruning { entries }));
    methods.extend((1..=8).map(|entries| CompressionMethod::Pairs { entries }));
    methods
}

/// The full Fig. 6 method grid on one array size, under an explicit
/// execution configuration.
fn fig6_sweep(workers: usize, cached: bool) -> ExperimentRun {
    Experiment::new()
        .network(resnet20())
        .array(64)
        .seed(DEFAULT_SEED)
        .methods(fig6_methods())
        .parallelism(workers)
        .decomposition_cache(cached)
        .run()
        .expect("sweep succeeds")
}

fn bench_fig6(c: &mut Criterion) {
    let panel = fig6(&resnet20(), 64, DEFAULT_SEED).expect("panel evaluation succeeds");
    println!(
        "\n== Fig. 6 (ResNet-20, 64x64, regenerated) ==\n{}",
        fig6_markdown(&panel)
    );

    let array = ArrayConfig::square(64).expect("valid array");
    c.bench_function("fig6_pruning_cycle_sweep_resnet20_64", |b| {
        b.iter(|| pruning_cycle_sweep(black_box(&array)))
    });

    // Before/after pair for the evaluation-pipeline overhaul: the serial,
    // uncached sweep reproduces the pre-optimization execution path; the
    // default path runs the same grid with the shared decomposition cache on
    // one worker per hardware thread. Both produce byte-identical records.
    let cells = fig6_methods().len() as u64;
    c.bench_function("fig6_sweep_resnet20_64_serial_uncached", |b| {
        b.throughput(cells);
        b.iter(|| fig6_sweep(1, false))
    });
    c.bench_function("fig6_sweep_resnet20_64_parallel_cached", |b| {
        b.throughput(cells);
        b.iter(|| fig6_sweep(default_parallelism(), true))
    });
}

criterion_group!(fig6_bench, bench_fig6);
criterion_main!(fig6_bench);
