//! Micro-benchmarks of the computational kernels underneath every
//! experiment: SVD, group decomposition, SDK matrix construction and the
//! parallel-window searches.

use imc_bench::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use imc_array::{sdk_matrix, search_best_window, ArrayConfig, ParallelWindow};
use imc_bench::{stage1_layer, stage3_layer};
use imc_core::{search_lowrank_window, DecompCache, GroupLowRank, LowRankFactors};
use imc_linalg::{uniform_matrix, Svd};

fn bench_kernels(c: &mut Criterion) {
    let (shape1, weight1) = stage1_layer();
    let (shape3, weight3) = stage3_layer();
    let w1 = weight1.to_im2col_matrix();
    let w3 = weight3.to_im2col_matrix();
    let array = ArrayConfig::square(64).expect("valid array");

    c.bench_function("svd_16x144", |b| {
        b.scalar("f64");
        b.iter(|| Svd::compute(black_box(&w1)).expect("SVD converges"))
    });
    c.bench_function("svd_64x576", |b| {
        b.scalar("f64");
        b.iter(|| Svd::compute(black_box(&w3)).expect("SVD converges"))
    });
    c.bench_function("lowrank_factors_64x576_k8", |b| {
        b.scalar("f64");
        b.iter(|| LowRankFactors::compute(black_box(&w3), 8).expect("valid rank"))
    });
    c.bench_function("group_lowrank_64x576_g4_k8", |b| {
        b.scalar("f64");
        b.iter(|| GroupLowRank::compute(black_box(&w3), 4, 8).expect("valid config"))
    });
    c.bench_function("sdk_matrix_16x144_pw4x4", |b| {
        b.iter(|| sdk_matrix(black_box(&w1), &shape1, ParallelWindow::new(4, 4)).expect("valid"))
    });
    c.bench_function("vwsdk_window_search_stage1", |b| {
        b.iter(|| search_best_window(black_box(&shape1), array).expect("search succeeds"))
    });
    c.bench_function("lowrank_window_search_stage3_g4_k8", |b| {
        b.iter(|| search_lowrank_window(black_box(&shape3), 8, 4, &array).expect("search succeeds"))
    });
}

/// The cache-aware dense kernels underneath the decomposition path.
fn bench_dense_kernels(c: &mut Criterion) {
    let a = uniform_matrix(256, 512, -1.0, 1.0, 1);
    let b_mat = uniform_matrix(512, 256, -1.0, 1.0, 2);
    let macs = (a.rows() * a.cols() * b_mat.cols()) as u64;
    c.bench_function("matmul_256x512_512x256", |bench| {
        bench.scalar("f64");
        bench.throughput(macs);
        bench.iter(|| {
            black_box(&a)
                .matmul(black_box(&b_mat))
                .expect("shapes match")
        })
    });

    let tall = uniform_matrix(2304, 256, -1.0, 1.0, 3);
    c.bench_function("transpose_2304x256", |bench| {
        bench.scalar("f64");
        bench.throughput((tall.rows() * tall.cols()) as u64);
        bench.iter(|| black_box(&tall).transpose())
    });

    let (_, weight3) = stage3_layer();
    let w3 = weight3.to_im2col_matrix();
    c.bench_function("hstack_4_blocks_64x144", |bench| {
        let blocks = w3.split_cols(4).expect("valid split");
        bench.iter(|| imc_linalg::Matrix::hstack(black_box(&blocks)).expect("valid stack"))
    });
}

/// The shared decomposition cache against the recompute-per-cell pattern it
/// replaces: a rank sweep over one layer, one SVD per (layer, group) pair.
fn bench_decomposition_cache(c: &mut Criterion) {
    let (shape3, weight3) = stage3_layer();
    let w3 = weight3.to_im2col_matrix();
    c.bench_function("rank_sweep_64x576_g4_uncached", |b| {
        b.iter(|| {
            for k in [2usize, 4, 8, 16] {
                black_box(GroupLowRank::compute(black_box(&w3), 4, k).expect("valid config"));
            }
        })
    });
    c.bench_function("rank_sweep_64x576_g4_cached", |b| {
        b.iter(|| {
            let cache = DecompCache::new();
            for k in [2usize, 4, 8, 16] {
                black_box(
                    cache
                        .decomposition(&shape3, 11, 4, k)
                        .expect("valid config"),
                );
            }
        })
    });
}

criterion_group!(
    kernels,
    bench_kernels,
    bench_dense_kernels,
    bench_decomposition_cache
);
criterion_main!(kernels);
