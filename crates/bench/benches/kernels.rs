//! Micro-benchmarks of the computational kernels underneath every
//! experiment: SVD, group decomposition, SDK matrix construction and the
//! parallel-window searches.

use imc_bench::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use imc_array::{sdk_matrix, search_best_window, ArrayConfig, ParallelWindow};
use imc_bench::{stage1_layer, stage3_layer};
use imc_core::{search_lowrank_window, GroupLowRank, LowRankFactors};
use imc_linalg::Svd;

fn bench_kernels(c: &mut Criterion) {
    let (shape1, weight1) = stage1_layer();
    let (shape3, weight3) = stage3_layer();
    let w1 = weight1.to_im2col_matrix();
    let w3 = weight3.to_im2col_matrix();
    let array = ArrayConfig::square(64).expect("valid array");

    c.bench_function("svd_16x144", |b| {
        b.iter(|| Svd::compute(black_box(&w1)).expect("SVD converges"))
    });
    c.bench_function("svd_64x576", |b| {
        b.iter(|| Svd::compute(black_box(&w3)).expect("SVD converges"))
    });
    c.bench_function("lowrank_factors_64x576_k8", |b| {
        b.iter(|| LowRankFactors::compute(black_box(&w3), 8).expect("valid rank"))
    });
    c.bench_function("group_lowrank_64x576_g4_k8", |b| {
        b.iter(|| GroupLowRank::compute(black_box(&w3), 4, 8).expect("valid config"))
    });
    c.bench_function("sdk_matrix_16x144_pw4x4", |b| {
        b.iter(|| sdk_matrix(black_box(&w1), &shape1, ParallelWindow::new(4, 4)).expect("valid"))
    });
    c.bench_function("vwsdk_window_search_stage1", |b| {
        b.iter(|| search_best_window(black_box(&shape1), array).expect("search succeeds"))
    });
    c.bench_function("lowrank_window_search_stage3_g4_k8", |b| {
        b.iter(|| search_lowrank_window(black_box(&shape3), 8, 4, &array).expect("search succeeds"))
    });
}

criterion_group!(kernels, bench_kernels);
criterion_main!(kernels);
