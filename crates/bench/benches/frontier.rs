//! Frontier bench: the adaptive frontier search (`Experiment::frontier`)
//! against the exhaustive sweep of the same grid.
//!
//! The grid is rank-dense on purpose — every divisor 2..=64 at four group
//! counts — because that is the regime the search is for: many rank cells
//! resolve to the same effective rank (or are dominated outright), and the
//! bisection plus the analytic cycles probe skips them without evaluating.
//! The measured cell reduction is printed and the searched-vs-exhaustive
//! pair is tracked in `BENCH_results.json` under the `frontier` group.

use imc_bench::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use imc_core::{CompressionConfig, RankSpec};
use imc_nn::resnet20;
use imc_sim::experiments::DEFAULT_SEED;
use imc_sim::runtime::default_parallelism;
use imc_sim::{CompressionMethod, Experiment};

/// The rank-dense low-rank grid: the im2col baseline plus every divisor
/// rank 2..=64 at group counts {1, 2, 4, 8}, SDK-mapped — 253 cells.
fn dense_methods() -> Vec<CompressionMethod> {
    let mut methods = vec![CompressionMethod::Uncompressed { sdk: false }];
    for groups in [1usize, 2, 4, 8] {
        for divisor in 2..=64usize {
            methods.push(CompressionMethod::LowRank(
                CompressionConfig::new(RankSpec::Divisor(divisor), groups, true)
                    .expect("valid low-rank config"),
            ));
        }
    }
    methods
}

fn dense_grid() -> Experiment {
    Experiment::new()
        .network(resnet20())
        .array(64)
        .seed(DEFAULT_SEED)
        .methods(dense_methods())
        .parallelism(default_parallelism())
}

fn bench_frontier(c: &mut Criterion) {
    let cells = dense_grid().grid_cells() as u64;
    let outcome = dense_grid()
        .frontier_mode(true)
        .frontier()
        .expect("frontier search succeeds");
    println!(
        "\n== Frontier search (ResNet-20, 64x64, rank-dense grid) ==\n\
         evaluated {} of {} cells ({:.1}x fewer), front holds {} records\n",
        outcome.cells_evaluated,
        outcome.grid_cells,
        outcome.grid_cells as f64 / outcome.cells_evaluated as f64,
        outcome.run.records().len(),
    );

    c.bench_function("frontier_dense_lowrank_resnet20_64_exhaustive", |b| {
        b.throughput(cells);
        b.iter(|| dense_grid().run().expect("exhaustive sweep succeeds"))
    });
    c.bench_function("frontier_dense_lowrank_resnet20_64_adaptive", |b| {
        b.throughput(cells);
        b.iter(|| {
            dense_grid()
                .frontier_mode(true)
                .frontier()
                .expect("frontier search succeeds")
        })
    });
    black_box(outcome);
}

criterion_group!(frontier, bench_frontier);
criterion_main!(frontier);
