//! Session bench: the wall-clock win of reusing one long-lived
//! [`EvalSession`] across sweeps, tracked in `BENCH_results.json`.
//!
//! Three configurations of the same fig6 ResNet-20 / 64×64 panel sweep:
//!
//! * `fig6_resnet20_64_cold` — `Experiment::run` semantics: every iteration
//!   builds a fresh decomposition cache and pays the full SVD and
//!   window-search cost.
//! * `fig6_resnet20_64_warm_session` — `Experiment::run_in` against a warmed
//!   unbounded session: every decomposition is a cache hit; what remains is
//!   the evaluation walk itself.
//! * `fig6_resnet20_64_warm_bounded` — the same warm rerun under a 64 MiB
//!   resident-byte budget, measuring the cost of the LRU bookkeeping (and of
//!   any recomputation the budget forces).
//!
//! All three produce bit-identical panels (asserted here before measuring).

use imc_bench::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use imc_nn::resnet20;
use imc_sim::experiments::{fig6_in, fig6_with, DEFAULT_SEED};
use imc_sim::report::fig6_markdown;
use imc_sim::{EvalSession, Precision};

fn bench_session_reuse(c: &mut Criterion) {
    let arch = resnet20();

    let cold = || fig6_with(&arch, 64, DEFAULT_SEED, None, Precision::F64).expect("panel");
    let warm_session = EvalSession::new();
    let bounded_session = EvalSession::builder().cache_budget_bytes(64 << 20).build();
    let warm =
        |session: &EvalSession| fig6_in(&arch, 64, DEFAULT_SEED, None, session).expect("panel");

    // Warm both sessions and pin the bit-identity contract before timing.
    let reference = fig6_markdown(&cold());
    assert_eq!(reference, fig6_markdown(&warm(&warm_session)));
    assert_eq!(reference, fig6_markdown(&warm(&bounded_session)));

    c.bench_function("fig6_resnet20_64_cold", |b| {
        b.iter(|| black_box(cold()));
    });
    c.bench_function("fig6_resnet20_64_warm_session", |b| {
        b.iter(|| black_box(warm(&warm_session)));
    });
    c.bench_function("fig6_resnet20_64_warm_bounded", |b| {
        b.iter(|| black_box(warm(&bounded_session)));
    });

    let stats = warm_session.stats();
    println!(
        "warm session after measurement: {} hits, {} misses, {} bytes resident",
        stats.hits(),
        stats.misses(),
        stats.resident_bytes
    );
}

criterion_group!(session, bench_session_reuse);
criterion_main!(session);
