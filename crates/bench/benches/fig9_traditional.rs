//! Fig. 9 bench: regenerates the ResNet-20 half of the proposed-vs-traditional
//! comparison once and benchmarks the two-stage cycle model that separates
//! the two methods.

use imc_bench::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use imc_array::ArrayConfig;
use imc_core::{lowrank_im2col_cycles, search_lowrank_window, RankSpec};
use imc_nn::resnet20;
use imc_sim::experiments::{fig9_for, DEFAULT_SEED};
use imc_sim::report::fig9_markdown;

fn proposed_vs_traditional_cycles(array: &ArrayConfig) -> (u64, u64) {
    let arch = resnet20();
    let mut traditional = 0u64;
    let mut proposed = 0u64;
    for (_, shape) in arch.compressible_convs() {
        for rank in RankSpec::paper_divisors() {
            let k1 = rank.resolve(shape.out_channels, shape.max_rank());
            traditional += lowrank_im2col_cycles(shape, k1, 1, array)
                .expect("valid config")
                .total();
            let per_group_cols = shape.im2col_rows() / 4;
            let k4 = rank.resolve(shape.out_channels, shape.out_channels.min(per_group_cols));
            proposed += search_lowrank_window(shape, k4, 4, array)
                .expect("search succeeds")
                .total();
        }
    }
    (traditional, proposed)
}

fn bench_fig9(c: &mut Criterion) {
    let rows = fig9_for(&resnet20(), 64, DEFAULT_SEED).expect("comparison succeeds");
    println!(
        "\n== Fig. 9 (ResNet-20, regenerated) ==\n{}",
        fig9_markdown(&rows)
    );

    let array = ArrayConfig::square(64).expect("valid array");
    c.bench_function("fig9_proposed_vs_traditional_cycles", |b| {
        b.iter(|| proposed_vs_traditional_cycles(black_box(&array)))
    });
}

criterion_group!(fig9_bench, bench_fig9);
criterion_main!(fig9_bench);
