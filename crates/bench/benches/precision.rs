//! `f32` vs `f64` kernel comparison on the SVD-bound hot path.
//!
//! Every benchmark below exists at both scalar widths and tags its JSON
//! record with a `"scalar"` field, so each `cargo bench --bench precision`
//! run appends a directly comparable `f32`-vs-`f64` pair to
//! `BENCH_results.json`. The interesting ratio is per-name across the two
//! tags: the acceptance bar for the generic-scalar refactor is ≥1.5×
//! throughput for `f32` on the SVD-bound sweep.

use imc_bench::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use imc_bench::stage3_layer;
use imc_core::{GroupLowRank, Precision};
use imc_linalg::{Matrix, Svd};

/// The Jacobi SVD of the stage-3 im2col block (64×576), the single most
/// expensive kernel of the evaluation pipeline, at both widths.
fn bench_svd_both_widths(c: &mut Criterion) {
    let (_, weight3) = stage3_layer();
    let w64 = weight3.to_im2col_matrix();
    let w32: Matrix<f32> = w64.cast();

    c.bench_function("svd_64x576", |b| {
        b.scalar("f64");
        b.iter(|| Svd::compute(black_box(&w64)).expect("SVD converges"))
    });
    c.bench_function("svd_64x576", |b| {
        b.scalar("f32");
        b.iter(|| Svd::<f32>::compute(black_box(&w32)).expect("SVD converges"))
    });
}

/// The SVD-bound sweep unit of the experiment grids — the per-block SVDs of
/// a grouped layer decomposition (g = 4 over the 64×576 stage-3 block) — at
/// both precisions through the same [`GroupLowRank`] entry point the sweeps
/// use.
fn bench_group_decomposition_both_widths(c: &mut Criterion) {
    let (_, weight3) = stage3_layer();
    let w64 = weight3.to_im2col_matrix();

    c.bench_function("group_svd_sweep_64x576_g4_k8", |b| {
        b.scalar("f64");
        b.iter(|| {
            GroupLowRank::compute_with_precision(black_box(&w64), 4, 8, Precision::F64)
                .expect("valid config")
        })
    });
    c.bench_function("group_svd_sweep_64x576_g4_k8", |b| {
        b.scalar("f32");
        b.iter(|| {
            GroupLowRank::compute_with_precision(black_box(&w64), 4, 8, Precision::F32)
                .expect("valid config")
        })
    });
}

/// Dense matmul at both widths (the reconstruction/error path), sized like
/// the largest layer product of the workspace.
fn bench_matmul_both_widths(c: &mut Criterion) {
    let a64 = imc_linalg::uniform_matrix(256, 512, -1.0, 1.0, 1);
    let b64 = imc_linalg::uniform_matrix(512, 256, -1.0, 1.0, 2);
    let a32: Matrix<f32> = a64.cast();
    let b32: Matrix<f32> = b64.cast();
    let macs = (a64.rows() * a64.cols() * b64.cols()) as u64;

    c.bench_function("matmul_256x512_512x256", |bench| {
        bench.scalar("f64");
        bench.throughput(macs);
        bench.iter(|| {
            black_box(&a64)
                .matmul(black_box(&b64))
                .expect("shapes match")
        })
    });
    c.bench_function("matmul_256x512_512x256", |bench| {
        bench.scalar("f32");
        bench.throughput(macs);
        bench.iter(|| {
            black_box(&a32)
                .matmul(black_box(&b32))
                .expect("shapes match")
        })
    });
}

criterion_group!(
    precision,
    bench_svd_both_widths,
    bench_group_decomposition_both_widths,
    bench_matmul_both_widths
);
criterion_main!(precision);
