//! Synth bench: a declarative synthetic-network sweep (the `synthetic:`
//! scenario family) through the experiment engine, cold versus warm,
//! tracked in `BENCH_results.json` under the `synth` group.
//!
//! The workload is the `deep-thin` scenario at its defaults (18 thin 3×3
//! blocks over three linearly-ramped stages) swept over two array sizes
//! with the im2col baseline plus a low-rank ladder — the shape of grid the
//! generator exists for: many skinny layers whose decompositions dominate
//! the cost, so session reuse pays off.
//!
//! * `synth_deep_thin_sweep_cold` — `Experiment::run` semantics: a fresh
//!   decomposition cache per iteration.
//! * `synth_deep_thin_sweep_warm` — `Experiment::run_in` against a warmed
//!   unbounded session: decompositions are cache hits.
//!
//! Both produce bit-identical runs (asserted before measuring).

use imc_bench::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use imc_core::{CompressionConfig, RankSpec};
use imc_sim::experiments::DEFAULT_SEED;
use imc_sim::runtime::default_parallelism;
use imc_sim::synth;
use imc_sim::{CompressionMethod, EvalSession, Experiment};

/// im2col baseline plus an SDK-mapped low-rank ladder.
fn methods() -> Vec<CompressionMethod> {
    let mut methods = vec![CompressionMethod::Uncompressed { sdk: false }];
    for divisor in [2usize, 4, 8] {
        methods.push(CompressionMethod::LowRank(
            CompressionConfig::new(RankSpec::Divisor(divisor), 1, true)
                .expect("valid low-rank config"),
        ));
    }
    methods
}

fn sweep() -> Experiment {
    Experiment::new()
        .synthetic_network(synth::deep_thin(18, 8))
        .expect("deep-thin builds at its defaults")
        .arrays([32, 64])
        .seed(DEFAULT_SEED)
        .methods(methods())
        .parallelism(default_parallelism())
}

fn bench_synth(c: &mut Criterion) {
    let cells = sweep().grid_cells() as u64;
    let session = EvalSession::new();

    // Warm the session and pin the bit-identity contract before timing.
    let cold_run = sweep().run().expect("cold sweep succeeds");
    let warm_run = sweep().run_in(&session).expect("warm sweep succeeds");
    assert_eq!(
        cold_run.to_jsonl().expect("cold run serializes"),
        warm_run.to_jsonl().expect("warm run serializes"),
        "session reuse must not change bytes"
    );
    println!("\n== synthetic:deep-thin-d18-w8 sweep ({cells} cells, arrays 32/64) ==\n");

    c.bench_function("synth_deep_thin_sweep_cold", |b| {
        b.throughput(cells);
        b.iter(|| black_box(sweep().run().expect("cold sweep succeeds")));
    });
    c.bench_function("synth_deep_thin_sweep_warm", |b| {
        b.throughput(cells);
        b.iter(|| black_box(sweep().run_in(&session).expect("warm sweep succeeds")));
    });
}

criterion_group!(synth, bench_synth);
criterion_main!(synth);
