//! Fig. 7 bench: regenerates the ResNet-20 normalized-energy bars once and
//! benchmarks the energy-model evaluation of the three access schedules.

use imc_bench::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use imc_array::ArrayConfig;
use imc_core::{CompressionConfig, RankSpec};
use imc_energy::EnergyParams;
use imc_nn::resnet20;
use imc_sim::experiments::{fig7, DEFAULT_SEED};
use imc_sim::network::{evaluate, CompressionMethod, NetworkEvaluation};
use imc_sim::report::fig7_markdown;

fn bench_fig7(c: &mut Criterion) {
    let bars = fig7(&resnet20(), DEFAULT_SEED).expect("energy evaluation succeeds");
    println!(
        "\n== Fig. 7 (ResNet-20, regenerated) ==\n{}",
        fig7_markdown(&bars)
    );

    // Pre-build the three evaluations; the timed loop exercises only the
    // energy model itself (the part specific to Fig. 7).
    let arch = resnet20();
    let array = ArrayConfig::square(64).expect("valid array");
    let cfg = CompressionConfig::new(RankSpec::Divisor(8), 4, true).expect("valid config");
    let evals: Vec<NetworkEvaluation> = vec![
        evaluate(
            &arch,
            &CompressionMethod::Uncompressed { sdk: false },
            array,
            DEFAULT_SEED,
        )
        .expect("baseline"),
        evaluate(
            &arch,
            &CompressionMethod::PatternPruning { entries: 6 },
            array,
            DEFAULT_SEED,
        )
        .expect("pruning"),
        evaluate(&arch, &CompressionMethod::LowRank(cfg), array, DEFAULT_SEED).expect("ours"),
    ];
    let params = EnergyParams::default();
    c.bench_function("fig7_energy_model_three_methods", |b| {
        b.iter(|| {
            evals
                .iter()
                .map(|e| e.energy(black_box(&params)))
                .sum::<f64>()
        })
    });
}

criterion_group!(fig7_bench, bench_fig7);
criterion_main!(fig7_bench);
