//! Shared helpers for the Criterion benchmark targets.
//!
//! Each bench target corresponds to one table or figure of the paper (see
//! `DESIGN.md` §4) and benchmarks the computation path that regenerates it.
//! The accuracy-side SVD sweeps are exercised once per target (not inside the
//! timed loop) so that `cargo bench --workspace` completes in minutes while
//! still regenerating every artifact.

#![forbid(unsafe_code)]

pub mod harness;

pub use harness::{BenchRecord, Bencher, Criterion};

use imc_tensor::{ConvShape, Tensor4};

/// The ResNet-20 stage-1 layer used by several micro-benches.
pub fn stage1_layer() -> (ConvShape, Tensor4) {
    let shape = ConvShape::square(16, 16, 3, 1, 1, 32).expect("valid layer shape");
    let weight = Tensor4::kaiming_for(&shape, 7).expect("valid weight tensor");
    (shape, weight)
}

/// The ResNet-20 stage-3 layer used by several micro-benches.
pub fn stage3_layer() -> (ConvShape, Tensor4) {
    let shape = ConvShape::square(64, 64, 3, 1, 1, 8).expect("valid layer shape");
    let weight = Tensor4::kaiming_for(&shape, 11).expect("valid weight tensor");
    (shape, weight)
}
