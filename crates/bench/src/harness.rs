//! A minimal, dependency-free benchmark harness with a Criterion-shaped API.
//!
//! The real `criterion` crate is not part of the offline dependency set, so
//! this module provides the narrow subset the bench targets use —
//! [`Criterion::bench_function`], [`Bencher::iter`], and the
//! [`criterion_group!`](crate::criterion_group) /
//! [`criterion_main!`](crate::criterion_main) macros — with wall-clock
//! timing, a short warm-up, and a fixed measurement budget per benchmark.
//! Swapping back to Criterion later is a one-line import change in each
//! bench target.

use std::time::{Duration, Instant};

/// Target measurement time per benchmark.
const MEASUREMENT_BUDGET: Duration = Duration::from_millis(600);

/// Warm-up time per benchmark.
const WARMUP_BUDGET: Duration = Duration::from_millis(150);

/// Hard cap on measured iterations (protects very fast routines from
/// spending the whole budget on loop bookkeeping).
const MAX_ITERS: u64 = 10_000;

/// The benchmark driver handed to every registered bench function.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Runs `f` under the harness and prints a one-line summary.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher::default();
        f(&mut bencher);
        bencher.report(name);
        self
    }
}

/// Times one routine: warm-up, then as many iterations as fit the budget.
#[derive(Debug, Default)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Measures `routine`, keeping its output alive via a black box so the
    /// optimizer cannot elide the work.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        // Warm-up (not recorded).
        let warm_start = Instant::now();
        while warm_start.elapsed() < WARMUP_BUDGET {
            std::hint::black_box(routine());
        }

        let mut iters = 0u64;
        let start = Instant::now();
        while start.elapsed() < MEASUREMENT_BUDGET && iters < MAX_ITERS {
            std::hint::black_box(routine());
            iters += 1;
        }
        self.iters = iters.max(1);
        self.elapsed = start.elapsed();
    }

    fn report(&self, name: &str) {
        if self.iters == 0 {
            println!("{name:<44} (no measurement: Bencher::iter was not called)");
            return;
        }
        let per_iter = self.elapsed.as_secs_f64() / self.iters as f64;
        println!(
            "{name:<44} {:>12}/iter   ({} iters in {:.2?})",
            format_duration(per_iter),
            self.iters,
            self.elapsed
        );
    }
}

fn format_duration(seconds: f64) -> String {
    if seconds >= 1.0 {
        format!("{seconds:.3} s")
    } else if seconds >= 1e-3 {
        format!("{:.3} ms", seconds * 1e3)
    } else if seconds >= 1e-6 {
        format!("{:.3} µs", seconds * 1e6)
    } else {
        format!("{:.1} ns", seconds * 1e9)
    }
}

/// Registers bench functions as a named group, mirroring Criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($function:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($function(&mut criterion);)+
        }
    };
}

/// Generates `main()` running the given groups, mirroring Criterion's macro.
/// Command-line arguments (e.g. the `--bench` flag `cargo bench` passes) are
/// accepted and ignored.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_at_least_one_iteration() {
        let mut bencher = Bencher::default();
        bencher.iter(|| std::hint::black_box(2u64 + 2));
        assert!(bencher.iters >= 1);
        assert!(bencher.elapsed > Duration::ZERO);
    }

    #[test]
    fn bench_function_runs_the_closure() {
        let mut ran = false;
        Criterion::default().bench_function("smoke", |b| {
            ran = true;
            b.iter(|| 1 + 1);
        });
        assert!(ran);
    }

    #[test]
    fn durations_format_with_sensible_units() {
        assert_eq!(format_duration(2.5), "2.500 s");
        assert_eq!(format_duration(2.5e-3), "2.500 ms");
        assert_eq!(format_duration(2.5e-6), "2.500 µs");
        assert_eq!(format_duration(2.5e-9), "2.5 ns");
    }
}
