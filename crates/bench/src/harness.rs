//! A minimal, dependency-free benchmark harness with a Criterion-shaped API.
//!
//! The real `criterion` crate is not part of the offline dependency set, so
//! this module provides the narrow subset the bench targets use —
//! [`Criterion::bench_function`], [`Bencher::iter`], and the
//! [`criterion_group!`](crate::criterion_group) /
//! [`criterion_main!`](crate::criterion_main) macros — with wall-clock
//! timing, a short warm-up, and a fixed measurement budget per benchmark.
//! Swapping back to Criterion later is a one-line import change in each
//! bench target.
//!
//! # Machine-readable results
//!
//! Groups created through [`criterion_group!`] append one JSON line per run
//! to `BENCH_results.json` at the workspace root (override the path with the
//! `IMC_BENCH_RESULTS` environment variable, or set it to `-` to disable).
//! Each line is a self-contained object:
//!
//! ```json
//! {"schema":1,"group":"kernels","unix_time_s":1753,"results":[
//!   {"name":"svd_64x576","ns_per_iter":123.4,"iters":100,"elapsed_ns":12340,
//!    "iters_per_s":8103727.7,"elems_per_s":null}]}
//! ```
//!
//! so the perf trajectory of every kernel and sweep is tracked across PRs by
//! appending — never rewriting — one line per `cargo bench` invocation.
//!
//! # Environment knobs
//!
//! * `IMC_BENCH_BUDGET_MS` — measurement budget per benchmark
//!   (default 600 ms). Set to a small value (e.g. `1`) for a smoke run that
//!   executes each benchmark exactly once.
//! * `IMC_BENCH_WARMUP_MS` — warm-up before measuring (default 150 ms,
//!   `0` skips the warm-up entirely).
//! * `IMC_BENCH_RESULTS` — path of the JSON-lines sink (default
//!   `BENCH_results.json` at the workspace root, `-` disables writing).

use std::path::PathBuf;
use std::time::{Duration, Instant};

/// Default target measurement time per benchmark.
const DEFAULT_MEASUREMENT_BUDGET_MS: u64 = 600;

/// Default warm-up time per benchmark.
const DEFAULT_WARMUP_BUDGET_MS: u64 = 150;

/// Hard cap on measured iterations (protects very fast routines from
/// spending the whole budget on loop bookkeeping).
const MAX_ITERS: u64 = 10_000;

fn env_millis(name: &str, default_ms: u64) -> Duration {
    let ms = std::env::var(name)
        .ok()
        .and_then(|v| v.trim().parse::<u64>().ok())
        .unwrap_or(default_ms);
    Duration::from_millis(ms)
}

fn measurement_budget() -> Duration {
    env_millis("IMC_BENCH_BUDGET_MS", DEFAULT_MEASUREMENT_BUDGET_MS)
}

fn warmup_budget() -> Duration {
    env_millis("IMC_BENCH_WARMUP_MS", DEFAULT_WARMUP_BUDGET_MS)
}

/// Resolves the results-sink path: `IMC_BENCH_RESULTS` when set (`-`
/// disables), otherwise `BENCH_results.json` at the workspace root.
fn results_path() -> Option<PathBuf> {
    match std::env::var("IMC_BENCH_RESULTS") {
        Ok(v) if v.trim() == "-" => None,
        Ok(v) if !v.trim().is_empty() => Some(PathBuf::from(v)),
        _ => {
            // crates/bench/../.. == the workspace root.
            let mut path = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
            path.pop();
            path.pop();
            path.push("BENCH_results.json");
            Some(path)
        }
    }
}

/// One measured benchmark, as recorded in the JSON sink.
#[derive(Debug, Clone)]
pub struct BenchRecord {
    /// Benchmark name (unique within its group).
    pub name: String,
    /// Mean wall-clock nanoseconds per iteration.
    pub ns_per_iter: f64,
    /// Number of measured iterations.
    pub iters: u64,
    /// Total measured wall-clock nanoseconds.
    pub elapsed_ns: u128,
    /// Declared elements processed per iteration (via
    /// [`Bencher::throughput`]), if any.
    pub elems_per_iter: Option<u64>,
    /// Scalar width the benched kernel ran at (via [`Bencher::scalar`];
    /// `"f32"` / `"f64"`), if declared. Distinguishes records of the same
    /// kernel at different precisions in `BENCH_results.json`.
    pub scalar: Option<String>,
}

impl BenchRecord {
    /// Iterations per second.
    pub fn iters_per_s(&self) -> f64 {
        if self.ns_per_iter > 0.0 {
            1e9 / self.ns_per_iter
        } else {
            0.0
        }
    }

    /// Elements per second, when a throughput was declared.
    pub fn elems_per_s(&self) -> Option<f64> {
        self.elems_per_iter
            .map(|elems| elems as f64 * self.iters_per_s())
    }

    fn to_json(&self) -> String {
        let elems = match self.elems_per_s() {
            Some(v) => format!("{v:.1}"),
            None => "null".to_owned(),
        };
        let scalar = match self.scalar.as_deref() {
            Some(tag) => json_string(tag),
            None => "null".to_owned(),
        };
        format!(
            "{{\"name\":{},\"scalar\":{},\"ns_per_iter\":{:.1},\"iters\":{},\"elapsed_ns\":{},\"iters_per_s\":{:.1},\"elems_per_s\":{}}}",
            json_string(&self.name),
            scalar,
            self.ns_per_iter,
            self.iters,
            self.elapsed_ns,
            self.iters_per_s(),
            elems
        )
    }
}

/// Escapes a string as a JSON string literal (quotes, backslashes, control
/// characters — benchmark names are plain ASCII in practice).
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// The benchmark driver handed to every registered bench function.
///
/// Groups created through [`criterion_group!`](crate::criterion_group) carry
/// a group label and flush their records to the JSON sink when dropped;
/// drivers created with `Criterion::default()` (e.g. in unit tests) only
/// print.
#[derive(Debug, Default)]
pub struct Criterion {
    group: Option<String>,
    records: Vec<BenchRecord>,
}

impl Criterion {
    /// A driver that appends its records to the JSON sink under `group`.
    /// Used by [`criterion_group!`](crate::criterion_group); prefer the macro
    /// in bench targets.
    pub fn for_group(group: &str) -> Self {
        Self {
            group: Some(group.to_owned()),
            records: Vec::new(),
        }
    }

    /// Runs `f` under the harness and prints a one-line summary.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher::default();
        f(&mut bencher);
        bencher.report(name);
        if bencher.iters > 0 {
            self.records.push(BenchRecord {
                name: name.to_owned(),
                ns_per_iter: bencher.ns_per_iter(),
                iters: bencher.iters,
                elapsed_ns: bencher.elapsed.as_nanos(),
                elems_per_iter: bencher.elems_per_iter,
                scalar: bencher.scalar.clone(),
            });
        }
        self
    }

    /// The records measured so far.
    pub fn records(&self) -> &[BenchRecord] {
        &self.records
    }

    fn flush_json(&mut self) {
        let Some(group) = self.group.as_deref() else {
            return;
        };
        if self.records.is_empty() {
            return;
        }
        let Some(path) = results_path() else {
            return;
        };
        let unix_time_s = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_secs())
            .unwrap_or(0);
        let results: Vec<String> = self.records.iter().map(BenchRecord::to_json).collect();
        let line = format!(
            "{{\"schema\":1,\"group\":{},\"unix_time_s\":{},\"results\":[{}]}}\n",
            json_string(group),
            unix_time_s,
            results.join(",")
        );
        let appended = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
            .and_then(|mut f| std::io::Write::write_all(&mut f, line.as_bytes()));
        match appended {
            Ok(()) => println!("results appended to {}", path.display()),
            Err(e) => eprintln!("warning: could not write {}: {e}", path.display()),
        }
        self.records.clear();
    }
}

impl Drop for Criterion {
    fn drop(&mut self) {
        self.flush_json();
    }
}

/// Times one routine: warm-up, then as many iterations as fit the budget.
#[derive(Debug, Default)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
    elems_per_iter: Option<u64>,
    scalar: Option<String>,
}

impl Bencher {
    /// Declares how many logical elements (MACs, grid cells, bytes — the
    /// caller picks the unit) one iteration processes, so the harness can
    /// report throughput next to the per-iteration time.
    pub fn throughput(&mut self, elements: u64) -> &mut Self {
        self.elems_per_iter = Some(elements);
        self
    }

    /// Declares the scalar width (`"f32"` / `"f64"`) the benched kernel runs
    /// at, so its JSON record is distinguishable from the same kernel at
    /// another precision.
    pub fn scalar(&mut self, tag: &str) -> &mut Self {
        self.scalar = Some(tag.to_owned());
        self
    }

    /// Measures `routine`, keeping its output alive via a black box so the
    /// optimizer cannot elide the work.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        // Warm-up (not recorded).
        let warmup = warmup_budget();
        if !warmup.is_zero() {
            let warm_start = Instant::now();
            while warm_start.elapsed() < warmup {
                std::hint::black_box(routine());
            }
        }

        let budget = measurement_budget();
        let mut iters = 0u64;
        let start = Instant::now();
        while start.elapsed() < budget && iters < MAX_ITERS {
            std::hint::black_box(routine());
            iters += 1;
        }
        self.iters = iters.max(1);
        self.elapsed = start.elapsed();
    }

    /// Mean nanoseconds per measured iteration.
    pub fn ns_per_iter(&self) -> f64 {
        if self.iters == 0 {
            return 0.0;
        }
        self.elapsed.as_nanos() as f64 / self.iters as f64
    }

    fn report(&self, name: &str) {
        if self.iters == 0 {
            println!("{name:<44} (no measurement: Bencher::iter was not called)");
            return;
        }
        let per_iter = self.elapsed.as_secs_f64() / self.iters as f64;
        let throughput = match (self.elems_per_iter, per_iter > 0.0) {
            (Some(elems), true) => format!("   {:>14}/s", format_count(elems as f64 / per_iter)),
            _ => String::new(),
        };
        println!(
            "{name:<44} {:>12}/iter   ({} iters in {:.2?}){throughput}",
            format_duration(per_iter),
            self.iters,
            self.elapsed
        );
    }
}

fn format_duration(seconds: f64) -> String {
    if seconds >= 1.0 {
        format!("{seconds:.3} s")
    } else if seconds >= 1e-3 {
        format!("{:.3} ms", seconds * 1e3)
    } else if seconds >= 1e-6 {
        format!("{:.3} µs", seconds * 1e6)
    } else {
        format!("{:.1} ns", seconds * 1e9)
    }
}

fn format_count(per_second: f64) -> String {
    if per_second >= 1e9 {
        format!("{:.2} Gelem", per_second / 1e9)
    } else if per_second >= 1e6 {
        format!("{:.2} Melem", per_second / 1e6)
    } else if per_second >= 1e3 {
        format!("{:.2} kelem", per_second / 1e3)
    } else {
        format!("{per_second:.1} elem")
    }
}

/// Registers bench functions as a named group, mirroring Criterion's macro.
/// The group name becomes the `group` field of the JSON results line.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($function:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::for_group(stringify!($group));
            $($function(&mut criterion);)+
        }
    };
}

/// Generates `main()` running the given groups, mirroring Criterion's macro.
/// Command-line arguments (e.g. the `--bench` flag `cargo bench` passes) are
/// accepted and ignored.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_at_least_one_iteration() {
        let mut bencher = Bencher::default();
        bencher.iter(|| std::hint::black_box(2u64 + 2));
        assert!(bencher.iters >= 1);
        assert!(bencher.elapsed > Duration::ZERO);
        assert!(bencher.ns_per_iter() > 0.0);
    }

    #[test]
    fn bench_function_runs_the_closure_and_records() {
        let mut ran = false;
        let mut criterion = Criterion::default();
        criterion.bench_function("smoke", |b| {
            ran = true;
            b.throughput(1000);
            b.iter(|| 1 + 1);
        });
        assert!(ran);
        let records = criterion.records();
        assert_eq!(records.len(), 1);
        assert_eq!(records[0].name, "smoke");
        assert!(records[0].iters >= 1);
        assert_eq!(records[0].elems_per_iter, Some(1000));
        assert!(records[0].elems_per_s().unwrap() > 0.0);
        // `Criterion::default()` has no group: dropping it must not write.
    }

    #[test]
    fn json_lines_are_well_formed() {
        let record = BenchRecord {
            name: "svd \"tall\"".to_owned(),
            ns_per_iter: 1234.5,
            iters: 100,
            elapsed_ns: 123_450,
            elems_per_iter: Some(64),
            scalar: Some("f32".to_owned()),
        };
        let json = record.to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\\\"tall\\\""));
        assert!(json.contains("\"iters\":100"));
        assert!(json.contains("\"elems_per_s\":"));
        assert!(json.contains("\"scalar\":\"f32\""));

        let untagged = BenchRecord {
            scalar: None,
            ..record
        };
        assert!(untagged.to_json().contains("\"scalar\":null"));
    }

    #[test]
    fn json_string_escapes_controls() {
        assert_eq!(json_string("a\"b\\c"), "\"a\\\"b\\\\c\"");
        assert_eq!(json_string("x\ny"), "\"x\\u000ay\"");
    }

    #[test]
    fn durations_format_with_sensible_units() {
        assert_eq!(format_duration(2.5), "2.500 s");
        assert_eq!(format_duration(2.5e-3), "2.500 ms");
        assert_eq!(format_duration(2.5e-6), "2.500 µs");
        assert_eq!(format_duration(2.5e-9), "2.5 ns");
    }

    #[test]
    fn counts_format_with_sensible_units() {
        assert_eq!(format_count(2.5e9), "2.50 Gelem");
        assert_eq!(format_count(2.5e6), "2.50 Melem");
        assert_eq!(format_count(2.5e3), "2.50 kelem");
        assert_eq!(format_count(12.0), "12.0 elem");
    }
}
