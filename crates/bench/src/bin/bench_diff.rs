//! Diffs two `BENCH_results.json` files (JSON lines appended by the bench
//! harness) and flags per-kernel regressions.
//!
//! ```text
//! bench_diff <previous.json> <current.json> [--threshold <percent>]
//! ```
//!
//! For every `(group, name, scalar)` kernel key, the **last** record in each
//! file wins (the files are append-only run histories). A kernel regresses
//! when its current `ns_per_iter` exceeds the previous one by more than the
//! threshold (default 20%). Exit status:
//!
//! * `0` — no regression (including: previous file missing/empty, which is
//!   normal for the first run of a CI artifact chain);
//! * `1` — at least one kernel regressed beyond the threshold;
//! * `2` — usage or parse error on the *current* file.
//!
//! CI wires this against the bench artifact of the previous run; the
//! threshold is deliberately generous because shared runners are noisy.

use std::collections::BTreeMap;
use std::process::ExitCode;

use imc_sim::JsonValue;

/// Kernel identity in the results history: `(group, name, scalar-tag)`.
type Key = (String, String, String);

/// Parses one results file into `key -> ns_per_iter`, last record winning.
/// Malformed lines are reported and skipped (the file is an append-only log;
/// one bad line must not invalidate the history).
fn load_results(text: &str, label: &str) -> BTreeMap<Key, f64> {
    let mut out = BTreeMap::new();
    for (lineno, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let value = match JsonValue::parse(line) {
            Ok(v) => v,
            Err(e) => {
                eprintln!("{label}:{}: skipping malformed line ({e})", lineno + 1);
                continue;
            }
        };
        let group = value
            .get("group")
            .and_then(JsonValue::as_str)
            .unwrap_or("(no group)")
            .to_owned();
        let Some(results) = value.get("results").and_then(JsonValue::as_array) else {
            continue;
        };
        for result in results {
            let Some(name) = result.get("name").and_then(JsonValue::as_str) else {
                continue;
            };
            let scalar = result
                .get("scalar")
                .and_then(JsonValue::as_str)
                .unwrap_or("")
                .to_owned();
            let Some(ns) = result.get("ns_per_iter").and_then(JsonValue::as_f64) else {
                continue;
            };
            if ns.is_finite() && ns > 0.0 {
                out.insert((group.clone(), name.to_owned(), scalar), ns);
            }
        }
    }
    out
}

fn format_key((group, name, scalar): &Key) -> String {
    if scalar.is_empty() {
        format!("{group}/{name}")
    } else {
        format!("{group}/{name} [{scalar}]")
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut paths = Vec::new();
    let mut threshold_pct = 20.0f64;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        if arg == "--threshold" {
            match iter.next().and_then(|v| v.parse::<f64>().ok()) {
                Some(v) if v > 0.0 => threshold_pct = v,
                _ => {
                    eprintln!("--threshold expects a positive percentage");
                    return ExitCode::from(2);
                }
            }
        } else {
            paths.push(arg.clone());
        }
    }
    let [previous_path, current_path] = paths.as_slice() else {
        eprintln!("usage: bench_diff <previous.json> <current.json> [--threshold <percent>]");
        return ExitCode::from(2);
    };

    // A missing previous file is the normal first link of an artifact chain.
    let previous = match std::fs::read_to_string(previous_path) {
        Ok(text) => load_results(&text, previous_path),
        Err(e) => {
            println!("no previous results at {previous_path} ({e}); nothing to diff");
            return ExitCode::SUCCESS;
        }
    };
    let current = match std::fs::read_to_string(current_path) {
        Ok(text) => load_results(&text, current_path),
        Err(e) => {
            eprintln!("could not read current results {current_path}: {e}");
            return ExitCode::from(2);
        }
    };

    let ratio_limit = 1.0 + threshold_pct / 100.0;
    let mut regressions = 0usize;
    let mut compared = 0usize;
    println!(
        "{:<56} {:>12} {:>12} {:>8}",
        "kernel", "prev ns/iter", "curr ns/iter", "ratio"
    );
    for (key, curr_ns) in &current {
        let Some(prev_ns) = previous.get(key) else {
            continue; // New kernel: nothing to regress against.
        };
        compared += 1;
        let ratio = curr_ns / prev_ns;
        let verdict = if ratio > ratio_limit {
            regressions += 1;
            "  REGRESSION"
        } else if ratio < 1.0 / ratio_limit {
            "  improved"
        } else {
            ""
        };
        println!(
            "{:<56} {:>12.1} {:>12.1} {:>7.2}x{verdict}",
            format_key(key),
            prev_ns,
            curr_ns,
            ratio
        );
    }
    println!(
        "\ncompared {compared} kernel(s) ({} previous, {} current); \
         {regressions} regression(s) beyond {threshold_pct:.0}%",
        previous.len(),
        current.len()
    );
    if regressions > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const HISTORY: &str = concat!(
        r#"{"schema":1,"group":"kernels","unix_time_s":1,"results":[{"name":"svd","scalar":null,"ns_per_iter":100.0,"iters":10,"elapsed_ns":1000,"iters_per_s":1.0,"elems_per_s":null}]}"#,
        "\n",
        r#"{"schema":1,"group":"kernels","unix_time_s":2,"results":[{"name":"svd","scalar":null,"ns_per_iter":200.0,"iters":10,"elapsed_ns":2000,"iters_per_s":1.0,"elems_per_s":null},{"name":"svd","scalar":"f32","ns_per_iter":50.0,"iters":10,"elapsed_ns":500,"iters_per_s":1.0,"elems_per_s":null}]}"#,
        "\n",
    );

    #[test]
    fn last_record_per_key_wins_and_scalar_tags_split_keys() {
        let results = load_results(HISTORY, "test");
        assert_eq!(results.len(), 2);
        assert_eq!(
            results[&("kernels".into(), "svd".into(), String::new())],
            200.0,
            "the later line must win"
        );
        assert_eq!(
            results[&("kernels".into(), "svd".into(), "f32".into())],
            50.0
        );
    }

    #[test]
    fn malformed_lines_are_skipped_not_fatal() {
        let text = format!("not json at all\n{HISTORY}");
        assert_eq!(load_results(&text, "test").len(), 2);
    }
}
