//! Differential certification of the `f32` fast path against the `f64`
//! bit-exact oracle.
//!
//! Every kernel in this crate exists at two widths: `f64` — the reference
//! whose behaviour is pinned byte-for-byte by the experiment goldens — and
//! `f32`, the SIMD-friendly fast path. This harness sweeps seeded matrix
//! shapes and conditioning profiles, runs each kernel at both widths on the
//! *same* underlying random stream (the `*_in` generators round one `f64`
//! SplitMix64/Box–Muller stream into each type, so the `f32` input is exactly
//! the rounded image of the `f64` input), and asserts the `f32` result
//! against the widened oracle under a per-kernel error budget.
//!
//! # Error budgets
//!
//! The budgets are stated as named constants next to their kernels and derive
//! from standard forward-error analysis in units of `f32` machine epsilon
//! (`eps ≈ 1.19e-7`):
//!
//! | kernel | budget | rationale |
//! |---|---|---|
//! | `transpose`, `submatrix`, stacking, `split_*` | **exact** | pure data movement, no arithmetic |
//! | element-wise (`add`, `sub`, `hadamard`, `scale`, `kron`) | few-ULP absolute | one rounding per element plus rounded inputs |
//! | `matmul`, `matvec` | `~k·eps` scaled by operand norms | length-`k` dot-product accumulation |
//! | `frobenius_norm`, `sum` | `~sqrt(len)·eps` relative | pairwise-free serial accumulation |
//! | Jacobi SVD | `~1e-4` relative to `σ_max` | iterative, stopped at `JACOBI_TOL = 1e-6` |
//! | QR / `least_squares` / `solve_matrix` | `~1e-4` (well-conditioned) | Householder backward stability × modest condition numbers |
//! | `spectral_norm` | `~1e-4` relative | power iteration stopped at `POWER_ITER_TOL = 1e-6` |
//!
//! A failure here means the fast path drifted outside its contract — not
//! that the tolerance needs loosening. Keep the budgets tight enough to
//! catch a broken kernel (a wrong sign, a dropped term) by orders of
//! magnitude.

use imc_linalg::random::{kaiming_matrix_in, low_rank_matrix_in, randn_matrix_in};
use imc_linalg::solve::{inverse, least_squares, solve_matrix};
use imc_linalg::{
    block_diag, frobenius_distance, identity_kron, kron, spectral_norm, uniform_matrix_in, Matrix,
    Qr, Scalar, Svd, TruncatedSvd,
};

const EPS32: f64 = f32::EPSILON as f64;

/// Shapes swept by every kernel comparison: square, tall, wide, layer-sized
/// (the 64×144 / 64×576 im2col blocks the experiments decompose).
const SHAPES: &[(usize, usize)] = &[
    (6, 6),
    (16, 12),
    (12, 16),
    (40, 12),
    (9, 30),
    (64, 64),
    (64, 144),
];

/// Seeds giving each shape several independent draws.
const SEEDS: &[u64] = &[1, 7, 2025];

/// Generates the same logical matrix at both widths (identical stream,
/// rounded draws).
fn pair(rows: usize, cols: usize, std: f64, seed: u64) -> (Matrix<f64>, Matrix<f32>) {
    (
        randn_matrix_in::<f64>(rows, cols, std, seed),
        randn_matrix_in::<f32>(rows, cols, std, seed),
    )
}

/// Relative Frobenius distance between an `f32` result (widened) and its
/// `f64` oracle, normalized by the oracle norm (absolute when the oracle is
/// zero).
fn rel_fro(oracle: &Matrix<f64>, fast: &Matrix<f32>) -> f64 {
    let wide = fast.cast::<f64>();
    let dist = frobenius_distance(oracle, &wide).expect("shapes match by construction");
    let norm = oracle.frobenius_norm();
    if norm > 0.0 {
        dist / norm
    } else {
        dist
    }
}

/// Distance in `f32` ULPs between two values, via the standard ordered-bits
/// mapping (sign-magnitude → two's-complement order).
fn ulp_distance(a: f32, b: f32) -> u64 {
    fn ordered(x: f32) -> i64 {
        let bits = x.to_bits() as i32;
        i64::from(if bits < 0 {
            i32::MIN.wrapping_sub(bits)
        } else {
            bits
        })
    }
    (ordered(a) - ordered(b)).unsigned_abs()
}

// ---------------------------------------------------------------------------
// Data movement: exact.
// ---------------------------------------------------------------------------

#[test]
fn data_movement_kernels_are_exact_in_f32() {
    for &(m, n) in SHAPES {
        for &seed in SEEDS {
            let (a64, a32) = pair(m, n, 1.0, seed);
            assert_eq!(a32, a64.cast::<f32>(), "input rounding is elementwise");
            assert_eq!(a32.transpose(), a64.transpose().cast::<f32>());
            assert_eq!(
                a32.transpose().transpose(),
                a32,
                "transpose must round-trip"
            );
            let sub32 = a32.submatrix(1, 1, m - 1, n - 1).unwrap();
            let sub64 = a64.submatrix(1, 1, m - 1, n - 1).unwrap();
            assert_eq!(sub32, sub64.cast::<f32>());
            let parts32 = a32.split_cols(3.min(n)).unwrap();
            assert_eq!(Matrix::hstack(&parts32).unwrap(), a32);
            let parts_rows32 = a32.split_rows(2.min(m)).unwrap();
            assert_eq!(Matrix::vstack(&parts_rows32).unwrap(), a32);
        }
    }
}

// ---------------------------------------------------------------------------
// Element-wise arithmetic: few-ULP budgets.
// ---------------------------------------------------------------------------

/// One `f32` rounding on top of rounded inputs: multiplicative kernels
/// (`hadamard`, `scale`, `kron`) keep a *relative* error of at most three
/// half-ULP roundings, so a few ULPs from the rounded oracle.
const ELEMENTWISE_ULP_BUDGET: u64 = 4;

/// Additive kernels (`add`, `sub`) cancel: the absolute error is bounded by
/// the rounded *operands* (`~eps·(|a|+|b|)`), not by the possibly tiny
/// result, so their budget is magnitude-scaled rather than ULP-counted.
const ADDITIVE_ABS_BUDGET: f64 = 4.0 * EPS32;

#[test]
fn elementwise_kernels_stay_within_ulp_budget() {
    for &(m, n) in SHAPES {
        for &seed in SEEDS {
            let (a64, a32) = pair(m, n, 1.0, seed);
            let (b64, b32) = pair(m, n, 0.5, seed ^ 0xABCD);
            let additive: [(Matrix<f64>, Matrix<f32>, &str); 2] = [
                (a64.add(&b64).unwrap(), a32.add(&b32).unwrap(), "add"),
                (a64.sub(&b64).unwrap(), a32.sub(&b32).unwrap(), "sub"),
            ];
            for (oracle, fast, kernel) in &additive {
                for (((o, f), a), b) in oracle
                    .as_slice()
                    .iter()
                    .zip(fast.as_slice())
                    .zip(a64.as_slice())
                    .zip(b64.as_slice())
                {
                    let tol = ADDITIVE_ABS_BUDGET * (a.abs() + b.abs());
                    assert!(
                        (o - f64::from(*f)).abs() <= tol,
                        "{kernel} {m}x{n} seed {seed}: {o} vs {f} (tol {tol:.3e})"
                    );
                }
            }
            let multiplicative: [(Matrix<f64>, Matrix<f32>, &str); 2] = [
                (
                    a64.hadamard(&b64).unwrap(),
                    a32.hadamard(&b32).unwrap(),
                    "hadamard",
                ),
                (a64.scale(1.75), a32.scale(1.75), "scale"),
            ];
            for (oracle, fast, kernel) in &multiplicative {
                let rounded = oracle.cast::<f32>();
                for (o, f) in rounded.as_slice().iter().zip(fast.as_slice()) {
                    let ulps = ulp_distance(*o, *f);
                    assert!(
                        ulps <= ELEMENTWISE_ULP_BUDGET,
                        "{kernel} {m}x{n} seed {seed}: {o} vs {f} is {ulps} ULPs"
                    );
                }
            }
        }
    }
}

#[test]
fn kron_family_stays_within_ulp_budget() {
    for &seed in SEEDS {
        let (a64, a32) = pair(4, 3, 1.0, seed);
        let (b64, b32) = pair(3, 5, 1.0, seed ^ 0x55);
        let k64 = kron(&a64, &b64).cast::<f32>();
        let k32 = kron(&a32, &b32);
        for (o, f) in k64.as_slice().iter().zip(k32.as_slice()) {
            assert!(
                ulp_distance(*o, *f) <= ELEMENTWISE_ULP_BUDGET,
                "kron seed {seed}: {o} vs {f}"
            );
        }
        // Structured embeddings are data movement around those products.
        assert_eq!(identity_kron(3, &b32), identity_kron(3, &b64).cast::<f32>());
        assert_eq!(
            block_diag(&[a32.clone(), b32.clone()]).unwrap(),
            block_diag(&[a64.clone(), b64.clone()]).unwrap().cast()
        );
    }
}

// ---------------------------------------------------------------------------
// Accumulating kernels: norm-scaled budgets.
// ---------------------------------------------------------------------------

/// Forward error of a length-`k` serial dot product: `~k·eps` relative to
/// `Σ|a||b|`, with head-room for the rounded inputs. Applied per output
/// matrix as `‖ΔC‖_F ≤ BUDGET(k) · ‖A‖_F·‖B‖_F`.
fn matmul_budget(k: usize) -> f64 {
    4.0 * (k as f64 + 2.0) * EPS32
}

#[test]
fn matmul_and_matvec_track_the_oracle_within_accumulation_budget() {
    for &(m, n) in SHAPES {
        for &seed in SEEDS {
            let (a64, a32) = pair(m, n, 1.0, seed);
            let (b64, b32) = pair(n, (m / 2).max(1), 1.0, seed ^ 0xF00D);
            let c64 = a64.matmul(&b64).unwrap();
            let c32 = a32.matmul(&b32).unwrap();
            let scale = a64.frobenius_norm() * b64.frobenius_norm();
            let dist = frobenius_distance(&c64, &c32.cast()).unwrap();
            assert!(
                dist <= matmul_budget(n) * scale,
                "matmul {m}x{n} seed {seed}: |ΔC|={dist:.3e} budget={:.3e}",
                matmul_budget(n) * scale
            );

            let v64 = b64.col(0).unwrap();
            let v32: Vec<f32> = v64.iter().map(|&x| x as f32).collect();
            let y64 = a64.matvec(&v64).unwrap();
            let y32 = a32.matvec(&v32).unwrap();
            let vnorm = v64.iter().map(|x| x * x).sum::<f64>().sqrt();
            let ydist = y64
                .iter()
                .zip(y32.iter())
                .map(|(o, f)| (o - f64::from(*f)).powi(2))
                .sum::<f64>()
                .sqrt();
            assert!(
                ydist <= matmul_budget(n) * a64.frobenius_norm() * vnorm,
                "matvec {m}x{n} seed {seed}: {ydist:.3e}"
            );
        }
    }
}

/// Serial sum of `len` squares: `~len·eps` in the worst case, far less in
/// practice for i.i.d. terms.
fn reduction_budget(len: usize) -> f64 {
    2.0 * (len as f64).sqrt() * EPS32 + 8.0 * EPS32
}

#[test]
fn norms_and_reductions_track_the_oracle() {
    for &(m, n) in SHAPES {
        for &seed in SEEDS {
            let (a64, a32) = pair(m, n, 1.0, seed);
            let fro64 = a64.frobenius_norm();
            let fro32 = f64::from(a32.frobenius_norm());
            assert!(
                (fro64 - fro32).abs() <= reduction_budget(m * n) * fro64,
                "frobenius {m}x{n} seed {seed}: {fro64} vs {fro32}"
            );
            let max64 = a64.max_abs();
            let max32 = f64::from(a32.max_abs());
            assert!(
                (max64 - max32).abs() <= 2.0 * EPS32 * max64,
                "max_abs {m}x{n} seed {seed}"
            );
        }
    }
}

// ---------------------------------------------------------------------------
// Jacobi SVD: the hot kernel of the whole pipeline.
// ---------------------------------------------------------------------------

/// Relative budget on singular values (against `σ_max`), reconstruction and
/// factor orthonormality for the `f32` Jacobi SVD: the sweeps stop at
/// `JACOBI_TOL = 1e-6` relative off-diagonal mass, so results sit ~1e-6
/// from the oracle; 1e-4 leaves two orders of magnitude of slack while still
/// failing loudly on any broken rotation.
const SVD_BUDGET: f64 = 1e-4;

#[test]
fn svd_singular_values_match_the_oracle_per_shape_and_seed() {
    for &(m, n) in SHAPES {
        for &seed in SEEDS {
            let (a64, a32) = pair(m, n, 1.0, seed);
            let svd64 = Svd::compute(&a64).unwrap();
            let svd32 = Svd::<f32>::compute(&a32).unwrap();
            let sigma_max = svd64.singular_values()[0];
            for (i, (s64, s32)) in svd64
                .singular_values()
                .iter()
                .zip(svd32.singular_values())
                .enumerate()
            {
                assert!(
                    (s64 - f64::from(*s32)).abs() <= SVD_BUDGET * sigma_max,
                    "σ_{i} {m}x{n} seed {seed}: {s64} vs {s32}"
                );
            }
        }
    }
}

#[test]
fn svd_reconstruction_and_orthonormality_hold_in_f32() {
    for &(m, n) in SHAPES {
        for &seed in SEEDS {
            let (a64, a32) = pair(m, n, 1.0, seed);
            let svd32 = Svd::<f32>::compute(&a32).unwrap();
            assert!(
                rel_fro(&a64, &svd32.reconstruct()) <= SVD_BUDGET,
                "reconstruct {m}x{n} seed {seed}"
            );
            let r = m.min(n);
            let utu = svd32.u().transpose().matmul(svd32.u()).unwrap();
            let vtv = svd32.v().transpose().matmul(svd32.v()).unwrap();
            let id = Matrix::<f32>::identity(r);
            assert!(
                utu.approx_eq(&id, SVD_BUDGET as f32),
                "UᵀU {m}x{n} seed {seed}"
            );
            assert!(
                vtv.approx_eq(&id, SVD_BUDGET as f32),
                "VᵀV {m}x{n} seed {seed}"
            );
        }
    }
}

#[test]
fn truncated_svd_errors_match_the_eckart_young_oracle() {
    for &(m, n) in &[(16usize, 12usize), (40, 12), (64, 144)] {
        for &seed in SEEDS {
            let (a64, a32) = pair(m, n, 1.0, seed);
            let svd64 = Svd::compute(&a64).unwrap();
            let norm = a64.frobenius_norm();
            for k in [1, 2, m.min(n) / 2, m.min(n)] {
                let t32 = TruncatedSvd::<f32>::compute(&a32, k).unwrap();
                let err32 = f64::from(t32.reconstruction_error(&a32).unwrap());
                let err64 = svd64.truncation_error(k);
                assert!(
                    (err32 - err64).abs() <= SVD_BUDGET * norm,
                    "rank {k} {m}x{n} seed {seed}: {err32} vs oracle {err64}"
                );
            }
        }
    }
}

#[test]
fn svd_handles_conditioning_sweep_in_f32() {
    // Spectra with condition numbers from 1e1 to 1e6: built as U·diag(σ)·Vᵀ
    // from seeded rotations so the oracle spectrum is known by construction.
    for &cond_exp in &[1i32, 3, 6] {
        for &seed in SEEDS {
            let n = 12usize;
            let sigma: Vec<f64> = (0..n)
                .map(|i| 10f64.powf(-(cond_exp as f64) * i as f64 / (n - 1) as f64))
                .collect();
            let q1 = Qr::compute(&randn_matrix_in::<f64>(n, n, 1.0, seed))
                .unwrap()
                .q()
                .clone();
            let q2 = Qr::compute(&randn_matrix_in::<f64>(n, n, 1.0, seed ^ 0xBEEF))
                .unwrap()
                .q()
                .clone();
            let a64 = q1
                .matmul(&Matrix::from_diag(&sigma))
                .unwrap()
                .matmul(&q2.transpose())
                .unwrap();
            let a32 = a64.cast::<f32>();
            let svd32 = Svd::<f32>::compute(&a32).unwrap();
            // Leading singular values are resolved to the SVD budget; trailing
            // ones below f32 resolution are only bounded in absolute terms.
            for (i, s) in svd32.singular_values().iter().enumerate() {
                let oracle = sigma[i];
                let tol = SVD_BUDGET * sigma[0];
                assert!(
                    (f64::from(*s) - oracle).abs() <= tol,
                    "cond 1e{cond_exp} seed {seed} σ_{i}: {s} vs {oracle}"
                );
            }
            assert!(
                rel_fro(&a64, &svd32.reconstruct()) <= SVD_BUDGET,
                "cond 1e{cond_exp} seed {seed} reconstruct"
            );
        }
    }
}

#[test]
fn low_rank_structure_is_detected_at_both_widths() {
    for &seed in SEEDS {
        let a64 = low_rank_matrix_in::<f64>(20, 15, 3, seed);
        let a32 = low_rank_matrix_in::<f32>(20, 15, 3, seed);
        let rank64 = Svd::compute(&a64).unwrap().rank(1e-9);
        let rank32 = Svd::<f32>::compute(&a32).unwrap().rank(1e-4_f32);
        assert_eq!(rank64, 3);
        assert_eq!(rank32, 3, "f32 rank detection at seed {seed}");
    }
}

// ---------------------------------------------------------------------------
// QR and solves.
// ---------------------------------------------------------------------------

/// Householder QR is backward stable; on the well-conditioned systems below
/// the forward error stays within `~1e-4` at `f32`.
const QR_BUDGET: f64 = 1e-4;

#[test]
fn qr_factors_track_the_oracle() {
    for &(m, n) in &[(12usize, 5usize), (15, 6), (64, 16)] {
        for &seed in SEEDS {
            let (a64, a32) = pair(m, n, 1.0, seed);
            let qr32 = Qr::<f32>::compute(&a32).unwrap();
            assert!(
                rel_fro(&a64, &qr32.reconstruct()) <= QR_BUDGET,
                "QR reconstruct {m}x{n} seed {seed}"
            );
            let qtq = qr32.q().transpose().matmul(qr32.q()).unwrap();
            assert!(
                qtq.approx_eq(&Matrix::<f32>::identity(n), QR_BUDGET as f32),
                "QᵀQ {m}x{n} seed {seed}"
            );
            // R's strict lower triangle is zero by construction at any width.
            for i in 0..n {
                for j in 0..i {
                    assert_eq!(qr32.r().get(i, j), 0.0);
                }
            }
        }
    }
}

/// Solves amplify the oracle distance by the condition number; the diagonally
/// dominant systems used here keep `cond(A)` small, so `1e-3` is generous.
const SOLVE_BUDGET: f64 = 1e-3;

#[test]
fn least_squares_and_matrix_solves_track_the_oracle() {
    for &seed in SEEDS {
        // Overdetermined consistent system.
        let (a64, a32) = pair(30, 5, 1.0, seed);
        let x_true: Vec<f64> = (0..5).map(|i| i as f64 - 2.0).collect();
        let b64 = a64.matvec(&x_true).unwrap();
        let b32: Vec<f32> = b64.iter().map(|&x| x as f32).collect();
        let x32 = least_squares(&a32, &b32).unwrap();
        for (got, want) in x32.iter().zip(&x_true) {
            assert!(
                (f64::from(*got) - want).abs()
                    <= SOLVE_BUDGET * x_true.iter().fold(0.0f64, |m, x| m.max(x.abs())),
                "least_squares seed {seed}: {got} vs {want}"
            );
        }

        // Diagonally dominant square system and its inverse.
        let mut a64 = randn_matrix_in::<f64>(6, 6, 0.1, seed);
        for i in 0..6 {
            a64.set(i, i, a64.get(i, i) + 5.0);
        }
        let a32 = a64.cast::<f32>();
        let (b64, b32) = pair(6, 4, 1.0, seed ^ 0x77);
        let x64 = solve_matrix(&a64, &b64).unwrap();
        let x32 = solve_matrix(&a32, &b32).unwrap();
        assert!(
            rel_fro(&x64, &x32) <= SOLVE_BUDGET,
            "solve_matrix seed {seed}"
        );
        let inv32 = inverse(&a32).unwrap();
        assert!(
            a32.matmul(&inv32)
                .unwrap()
                .approx_eq(&Matrix::<f32>::identity(6), SOLVE_BUDGET as f32),
            "inverse seed {seed}"
        );
    }
}

// ---------------------------------------------------------------------------
// Spectral norm.
// ---------------------------------------------------------------------------

/// Power iteration stops at `POWER_ITER_TOL = 1e-6` relative change at f32.
const SPECTRAL_BUDGET: f64 = 1e-4;

#[test]
fn spectral_norm_tracks_the_oracle() {
    for &(m, n) in &[(14usize, 9usize), (25, 25), (64, 144)] {
        for &seed in SEEDS {
            let (a64, a32) = pair(m, n, 1.0, seed);
            let s64 = spectral_norm(&a64).unwrap();
            let s32 = f64::from(spectral_norm(&a32).unwrap());
            assert!(
                (s64 - s32).abs() <= SPECTRAL_BUDGET * s64,
                "spectral {m}x{n} seed {seed}: {s64} vs {s32}"
            );
        }
    }
}

// ---------------------------------------------------------------------------
// Generator parity.
// ---------------------------------------------------------------------------

#[test]
fn generic_generators_are_roundings_of_the_f64_stream() {
    for &seed in SEEDS {
        let g64 = randn_matrix_in::<f64>(10, 8, 0.7, seed);
        let g32 = randn_matrix_in::<f32>(10, 8, 0.7, seed);
        assert_eq!(g32, g64.cast::<f32>());
        let u64m = uniform_matrix_in::<f64>(10, 8, -0.5, 0.5, seed);
        let u32m = uniform_matrix_in::<f32>(10, 8, -0.5, 0.5, seed);
        assert_eq!(u32m, u64m.cast::<f32>());
        let k64 = kaiming_matrix_in::<f64>(12, 9, 144, seed);
        let k32 = kaiming_matrix_in::<f32>(12, 9, 144, seed);
        assert_eq!(k32, k64.cast::<f32>());
    }
}

#[test]
fn scalar_tolerances_are_width_appropriate() {
    // The per-width tolerances must straddle their machine epsilons: a
    // tolerance below eps can never be met, one above sqrt(eps) stops far
    // too early. Evaluated through a function so the relationship is
    // checked for any future Scalar impl, not folded away as a constant.
    fn straddles<S: Scalar>(upper: f64) -> bool {
        let tol = S::JACOBI_TOL.to_f64();
        let eps = S::EPSILON.to_f64();
        tol > eps && tol < upper
    }
    assert!(straddles::<f32>(1e-3));
    assert!(straddles::<f64>(1e-9));
}
