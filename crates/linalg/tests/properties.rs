//! Property-based tests for the linear-algebra substrate.

use imc_linalg::{block_diag, identity_kron, kron, Matrix, Svd, TruncatedSvd};
use proptest::prelude::*;

/// Strategy producing a matrix with dimensions in `rows × cols` and entries
/// in a moderate range so that the Jacobi SVD stays well conditioned.
fn matrix_strategy(max_rows: usize, max_cols: usize) -> impl Strategy<Value = Matrix> {
    (1..=max_rows, 1..=max_cols).prop_flat_map(|(r, c)| {
        proptest::collection::vec(-10.0f64..10.0, r * c)
            .prop_map(move |data| Matrix::from_vec(r, c, data).expect("length matches"))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn transpose_is_involutive(m in matrix_strategy(12, 12)) {
        prop_assert_eq!(m.transpose().transpose(), m);
    }

    #[test]
    fn matmul_is_associative(
        a_data in proptest::collection::vec(-5.0f64..5.0, 6 * 5),
        b_data in proptest::collection::vec(-5.0f64..5.0, 5 * 4),
        c_data in proptest::collection::vec(-5.0f64..5.0, 4 * 3),
    ) {
        let a = Matrix::from_vec(6, 5, a_data).unwrap();
        let b = Matrix::from_vec(5, 4, b_data).unwrap();
        let c = Matrix::from_vec(4, 3, c_data).unwrap();
        let left = a.matmul(&b).unwrap().matmul(&c).unwrap();
        let right = a.matmul(&b.matmul(&c).unwrap()).unwrap();
        prop_assert!(left.approx_eq(&right, 1e-6));
    }

    #[test]
    fn frobenius_norm_is_subadditive(a in matrix_strategy(8, 8)) {
        let b = a.map(|x| x * 0.5 - 1.0);
        let sum = a.add(&b).unwrap();
        prop_assert!(sum.frobenius_norm() <= a.frobenius_norm() + b.frobenius_norm() + 1e-9);
    }

    #[test]
    fn svd_reconstructs_input(m in matrix_strategy(10, 10)) {
        let svd = Svd::compute(&m).unwrap();
        let norm = m.frobenius_norm().max(1.0);
        prop_assert!(svd.reconstruct().sub(&m).unwrap().frobenius_norm() <= 1e-7 * norm);
    }

    #[test]
    fn svd_truncation_error_is_monotone(m in matrix_strategy(9, 9)) {
        let svd = Svd::compute(&m).unwrap();
        let r = m.rows().min(m.cols());
        let mut prev = f64::INFINITY;
        for k in 1..=r {
            let err = svd.truncation_error(k);
            prop_assert!(err <= prev + 1e-9);
            prev = err;
        }
    }

    #[test]
    fn truncated_svd_error_matches_sigma_tail(m in matrix_strategy(8, 8)) {
        let r = m.rows().min(m.cols());
        let k = (r / 2).max(1);
        let svd = Svd::compute(&m).unwrap();
        let trunc = TruncatedSvd::compute(&m, k).unwrap();
        let measured = trunc.reconstruction_error(&m).unwrap();
        let tail = svd.truncation_error(k);
        prop_assert!((measured - tail).abs() <= 1e-6 * (1.0 + tail));
    }

    #[test]
    fn split_cols_then_hstack_roundtrips(m in matrix_strategy(6, 12), g in 1usize..5) {
        let g = g.min(m.cols());
        let parts = m.split_cols(g).unwrap();
        prop_assert_eq!(Matrix::hstack(&parts).unwrap(), m);
    }

    #[test]
    fn kron_dimensions_multiply(a in matrix_strategy(4, 4), b in matrix_strategy(3, 3)) {
        let k = kron(&a, &b);
        prop_assert_eq!(k.rows(), a.rows() * b.rows());
        prop_assert_eq!(k.cols(), a.cols() * b.cols());
    }

    #[test]
    fn identity_kron_matvec_applies_blockwise(b in matrix_strategy(4, 3), n in 1usize..4) {
        // (I_n ⊗ B) x  ==  concatenation of B x_i over the n slices of x.
        let big = identity_kron(n, &b);
        let x: Vec<f64> = (0..n * b.cols()).map(|i| (i as f64) * 0.25 - 1.0).collect();
        let full = big.matvec(&x).unwrap();
        for blk in 0..n {
            let xi = &x[blk * b.cols()..(blk + 1) * b.cols()];
            let yi = b.matvec(xi).unwrap();
            for (r, &want) in yi.iter().enumerate() {
                prop_assert!((full[blk * b.rows() + r] - want).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn block_diag_preserves_frobenius_norm_squared(
        a in matrix_strategy(4, 4),
        b in matrix_strategy(3, 5),
    ) {
        let d = block_diag(&[a.clone(), b.clone()]).unwrap();
        let want = (a.frobenius_norm().powi(2) + b.frobenius_norm().powi(2)).sqrt();
        prop_assert!((d.frobenius_norm() - want).abs() < 1e-9);
    }
}
