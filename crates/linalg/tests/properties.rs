//! Property-based tests for the linear-algebra substrate.
//!
//! The properties are exercised over a deterministic family of seeded random
//! matrices (`proptest` is not part of the offline dependency set); each case
//! count matches what the original property-test configuration explored.

use imc_linalg::{
    block_diag, identity_kron, kron, random::SeededRng, uniform_matrix, Matrix, Svd, TruncatedSvd,
};

const CASES: u64 = 48;

/// A matrix with dimensions in `1..=max_rows × 1..=max_cols` and entries in
/// a moderate range so that the Jacobi SVD stays well conditioned.
fn random_matrix(max_rows: usize, max_cols: usize, seed: u64) -> Matrix {
    let mut rng = SeededRng::seed_from_u64(seed.wrapping_mul(0x9E37_79B9));
    let r = rng.gen_range(1..=max_rows);
    let c = rng.gen_range(1..=max_cols);
    uniform_matrix(r, c, -10.0, 10.0, seed)
}

#[test]
fn transpose_is_involutive() {
    for seed in 0..CASES {
        let m = random_matrix(12, 12, seed);
        assert_eq!(m.transpose().transpose(), m);
    }
}

#[test]
fn matmul_is_associative() {
    for seed in 0..CASES {
        let a = uniform_matrix(6, 5, -5.0, 5.0, seed);
        let b = uniform_matrix(5, 4, -5.0, 5.0, seed + 1000);
        let c = uniform_matrix(4, 3, -5.0, 5.0, seed + 2000);
        let left = a.matmul(&b).unwrap().matmul(&c).unwrap();
        let right = a.matmul(&b.matmul(&c).unwrap()).unwrap();
        assert!(left.approx_eq(&right, 1e-6), "seed {seed}");
    }
}

#[test]
fn frobenius_norm_is_subadditive() {
    for seed in 0..CASES {
        let a = random_matrix(8, 8, seed);
        let b = a.map(|x| x * 0.5 - 1.0);
        let sum = a.add(&b).unwrap();
        assert!(
            sum.frobenius_norm() <= a.frobenius_norm() + b.frobenius_norm() + 1e-9,
            "seed {seed}"
        );
    }
}

#[test]
fn svd_reconstructs_input() {
    for seed in 0..CASES {
        let m = random_matrix(10, 10, seed);
        let svd = Svd::compute(&m).unwrap();
        let norm = m.frobenius_norm().max(1.0);
        assert!(
            svd.reconstruct().sub(&m).unwrap().frobenius_norm() <= 1e-7 * norm,
            "seed {seed}"
        );
    }
}

#[test]
fn svd_truncation_error_is_monotone() {
    for seed in 0..CASES {
        let m = random_matrix(9, 9, seed);
        let svd = Svd::compute(&m).unwrap();
        let r = m.rows().min(m.cols());
        let mut prev = f64::INFINITY;
        for k in 1..=r {
            let err = svd.truncation_error(k);
            assert!(err <= prev + 1e-9, "seed {seed} rank {k}");
            prev = err;
        }
    }
}

#[test]
fn truncated_svd_error_matches_sigma_tail() {
    for seed in 0..CASES {
        let m = random_matrix(8, 8, seed);
        let r = m.rows().min(m.cols());
        let k = (r / 2).max(1);
        let svd = Svd::compute(&m).unwrap();
        let trunc = TruncatedSvd::compute(&m, k).unwrap();
        let measured = trunc.reconstruction_error(&m).unwrap();
        let tail = svd.truncation_error(k);
        assert!(
            (measured - tail).abs() <= 1e-6 * (1.0 + tail),
            "seed {seed}"
        );
    }
}

#[test]
fn split_cols_then_hstack_roundtrips() {
    for seed in 0..CASES {
        let m = random_matrix(6, 12, seed);
        let g = (seed as usize % 4 + 1).min(m.cols());
        let parts = m.split_cols(g).unwrap();
        assert_eq!(Matrix::hstack(&parts).unwrap(), m, "seed {seed}");
    }
}

#[test]
fn kron_dimensions_multiply() {
    for seed in 0..CASES {
        let a = random_matrix(4, 4, seed);
        let b = random_matrix(3, 3, seed + 5000);
        let k = kron(&a, &b);
        assert_eq!(k.rows(), a.rows() * b.rows());
        assert_eq!(k.cols(), a.cols() * b.cols());
    }
}

#[test]
fn identity_kron_matvec_applies_blockwise() {
    for seed in 0..CASES {
        // (I_n ⊗ B) x  ==  concatenation of B x_i over the n slices of x.
        let b = random_matrix(4, 3, seed);
        let n = seed as usize % 3 + 1;
        let big = identity_kron(n, &b);
        let x: Vec<f64> = (0..n * b.cols()).map(|i| (i as f64) * 0.25 - 1.0).collect();
        let full = big.matvec(&x).unwrap();
        for blk in 0..n {
            let xi = &x[blk * b.cols()..(blk + 1) * b.cols()];
            let yi = b.matvec(xi).unwrap();
            for (r, &want) in yi.iter().enumerate() {
                assert!(
                    (full[blk * b.rows() + r] - want).abs() < 1e-9,
                    "seed {seed}"
                );
            }
        }
    }
}

/// Unblocked i-k-j matmul — the exact accumulation order the striped kernel
/// in `Matrix::matmul` must preserve bit for bit.
fn matmul_reference(a: &Matrix, b: &Matrix) -> Matrix {
    let mut out = Matrix::zeros(a.rows(), b.cols());
    for i in 0..a.rows() {
        for k in 0..a.cols() {
            let x = a.get(i, k);
            if x == 0.0 {
                continue;
            }
            for j in 0..b.cols() {
                out.set(i, j, out.get(i, j) + x * b.get(k, j));
            }
        }
    }
    out
}

#[test]
fn tiled_matmul_is_bit_identical_to_naive_reference() {
    for seed in 0..CASES {
        let mut rng = SeededRng::seed_from_u64(seed.wrapping_mul(0xD134_2543_DE82_EF95));
        // Inner dimensions large enough that the k loop spans several cache
        // stripes (striping engages once inner × cols exceeds the stripe
        // working set), plus tiny shapes for the degenerate single-stripe path.
        let (r, inner, c) = if seed % 4 == 0 {
            (
                rng.gen_range(1..=4),
                rng.gen_range(1..=8),
                rng.gen_range(1..=4),
            )
        } else {
            (
                rng.gen_range(1..=8),
                rng.gen_range(300..=700),
                rng.gen_range(100..=300),
            )
        };
        let a = uniform_matrix(r, inner, -5.0, 5.0, seed);
        let b = uniform_matrix(inner, c, -5.0, 5.0, seed + 3000);
        let tiled = a.matmul(&b).unwrap();
        assert_eq!(tiled, matmul_reference(&a, &b), "seed {seed}");
    }
}

#[test]
fn tiled_matmul_matches_dot_product_definition() {
    for seed in 0..CASES {
        let a = random_matrix(10, 40, seed);
        let b = uniform_matrix(a.cols(), 7, -5.0, 5.0, seed + 4000);
        let got = a.matmul(&b).unwrap();
        for i in 0..a.rows() {
            for j in 0..b.cols() {
                let want: f64 = (0..a.cols()).map(|k| a.get(i, k) * b.get(k, j)).sum();
                assert!((got.get(i, j) - want).abs() <= 1e-9, "seed {seed}");
            }
        }
    }
}

#[test]
fn blocked_transpose_is_bit_identical_to_naive_reference() {
    for seed in 0..CASES {
        let m = random_matrix(90, 70, seed);
        let mut reference = Matrix::zeros(m.cols(), m.rows());
        for i in 0..m.rows() {
            for j in 0..m.cols() {
                reference.set(j, i, m.get(i, j));
            }
        }
        assert_eq!(m.transpose(), reference, "seed {seed}");
    }
}

/// Verbatim copy of the pre-optimization row-major one-sided Jacobi SVD,
/// kept as the bit-exactness oracle for the column-major implementation.
fn svd_reference(a: &Matrix) -> (Matrix, Vec<f64>, Matrix) {
    const MAX_SWEEPS: usize = 60;
    const JACOBI_TOL: f64 = 1e-12;
    let (m, n) = a.shape();
    if n > m {
        let (u, s, v) = svd_reference(&a.transpose());
        return (v, s, u);
    }
    let mut u = a.clone();
    let mut v = Matrix::identity(n);
    let r = n;
    let mut converged = false;
    let mut sweeps = 0;
    while sweeps < MAX_SWEEPS && !converged {
        converged = true;
        for p in 0..r {
            for q in (p + 1)..r {
                let mut alpha = 0.0;
                let mut beta = 0.0;
                let mut gamma = 0.0;
                for i in 0..m {
                    let up = u.get(i, p);
                    let uq = u.get(i, q);
                    alpha += up * up;
                    beta += uq * uq;
                    gamma += up * uq;
                }
                if gamma.abs() <= JACOBI_TOL * (alpha * beta).sqrt() || gamma == 0.0 {
                    continue;
                }
                converged = false;
                let zeta = (beta - alpha) / (2.0 * gamma);
                let t = zeta.signum() / (zeta.abs() + (1.0 + zeta * zeta).sqrt());
                let c = 1.0 / (1.0 + t * t).sqrt();
                let s = c * t;
                for i in 0..m {
                    let up = u.get(i, p);
                    let uq = u.get(i, q);
                    u.set(i, p, c * up - s * uq);
                    u.set(i, q, s * up + c * uq);
                }
                for i in 0..n {
                    let vp = v.get(i, p);
                    let vq = v.get(i, q);
                    v.set(i, p, c * vp - s * vq);
                    v.set(i, q, s * vp + c * vq);
                }
            }
        }
        sweeps += 1;
    }
    assert!(converged, "reference Jacobi did not converge");
    let mut order: Vec<usize> = (0..r).collect();
    let mut sigma = vec![0.0; r];
    for (j, s) in sigma.iter_mut().enumerate() {
        let mut norm = 0.0;
        for i in 0..m {
            norm += u.get(i, j) * u.get(i, j);
        }
        *s = norm.sqrt();
    }
    order.sort_by(|&a_idx, &b_idx| {
        sigma[b_idx]
            .partial_cmp(&sigma[a_idx])
            .unwrap_or(core::cmp::Ordering::Equal)
    });
    let mut u_sorted = Matrix::zeros(m, r);
    let mut v_sorted = Matrix::zeros(n, r);
    let mut sigma_sorted = vec![0.0; r];
    for (new_j, &old_j) in order.iter().enumerate() {
        let s = sigma[old_j];
        sigma_sorted[new_j] = s;
        for i in 0..m {
            let val = if s > f64::EPSILON {
                u.get(i, old_j) / s
            } else {
                0.0
            };
            u_sorted.set(i, new_j, val);
        }
        for i in 0..n {
            v_sorted.set(i, new_j, v.get(i, old_j));
        }
    }
    (u_sorted, sigma_sorted, v_sorted)
}

#[test]
fn column_major_jacobi_is_bit_identical_to_row_major_reference() {
    for seed in 0..CASES / 2 {
        // Tall, square and wide shapes (the wide case exercises the
        // transpose-and-swap recursion).
        let mut rng = SeededRng::seed_from_u64(seed.wrapping_mul(0xA076_1D64_78BD_642F));
        let r = rng.gen_range(1..=24);
        let c = rng.gen_range(1..=24);
        let m = uniform_matrix(r, c, -10.0, 10.0, seed + 9000);
        let svd = Svd::compute(&m).unwrap();
        let (u_ref, sigma_ref, v_ref) = svd_reference(&m);
        assert_eq!(svd.singular_values(), &sigma_ref[..], "seed {seed}");
        assert_eq!(svd.u(), &u_ref, "seed {seed}");
        assert_eq!(svd.v(), &v_ref, "seed {seed}");
    }
}

#[test]
fn block_diag_preserves_frobenius_norm_squared() {
    for seed in 0..CASES {
        let a = random_matrix(4, 4, seed);
        let b = random_matrix(3, 5, seed + 7000);
        let d = block_diag(&[a.clone(), b.clone()]).unwrap();
        let want = (a.frobenius_norm().powi(2) + b.frobenius_norm().powi(2)).sqrt();
        assert!((d.frobenius_norm() - want).abs() < 1e-9, "seed {seed}");
    }
}
