//! Property-based tests for the linear-algebra substrate.
//!
//! The properties are exercised over a deterministic family of seeded random
//! matrices (`proptest` is not part of the offline dependency set); each case
//! count matches what the original property-test configuration explored.

use imc_linalg::{
    block_diag, identity_kron, kron, random::SeededRng, uniform_matrix, Matrix, Svd, TruncatedSvd,
};

const CASES: u64 = 48;

/// A matrix with dimensions in `1..=max_rows × 1..=max_cols` and entries in
/// a moderate range so that the Jacobi SVD stays well conditioned.
fn random_matrix(max_rows: usize, max_cols: usize, seed: u64) -> Matrix {
    let mut rng = SeededRng::seed_from_u64(seed.wrapping_mul(0x9E37_79B9));
    let r = rng.gen_range(1..=max_rows);
    let c = rng.gen_range(1..=max_cols);
    uniform_matrix(r, c, -10.0, 10.0, seed)
}

#[test]
fn transpose_is_involutive() {
    for seed in 0..CASES {
        let m = random_matrix(12, 12, seed);
        assert_eq!(m.transpose().transpose(), m);
    }
}

#[test]
fn matmul_is_associative() {
    for seed in 0..CASES {
        let a = uniform_matrix(6, 5, -5.0, 5.0, seed);
        let b = uniform_matrix(5, 4, -5.0, 5.0, seed + 1000);
        let c = uniform_matrix(4, 3, -5.0, 5.0, seed + 2000);
        let left = a.matmul(&b).unwrap().matmul(&c).unwrap();
        let right = a.matmul(&b.matmul(&c).unwrap()).unwrap();
        assert!(left.approx_eq(&right, 1e-6), "seed {seed}");
    }
}

#[test]
fn frobenius_norm_is_subadditive() {
    for seed in 0..CASES {
        let a = random_matrix(8, 8, seed);
        let b = a.map(|x| x * 0.5 - 1.0);
        let sum = a.add(&b).unwrap();
        assert!(
            sum.frobenius_norm() <= a.frobenius_norm() + b.frobenius_norm() + 1e-9,
            "seed {seed}"
        );
    }
}

#[test]
fn svd_reconstructs_input() {
    for seed in 0..CASES {
        let m = random_matrix(10, 10, seed);
        let svd = Svd::compute(&m).unwrap();
        let norm = m.frobenius_norm().max(1.0);
        assert!(
            svd.reconstruct().sub(&m).unwrap().frobenius_norm() <= 1e-7 * norm,
            "seed {seed}"
        );
    }
}

#[test]
fn svd_truncation_error_is_monotone() {
    for seed in 0..CASES {
        let m = random_matrix(9, 9, seed);
        let svd = Svd::compute(&m).unwrap();
        let r = m.rows().min(m.cols());
        let mut prev = f64::INFINITY;
        for k in 1..=r {
            let err = svd.truncation_error(k);
            assert!(err <= prev + 1e-9, "seed {seed} rank {k}");
            prev = err;
        }
    }
}

#[test]
fn truncated_svd_error_matches_sigma_tail() {
    for seed in 0..CASES {
        let m = random_matrix(8, 8, seed);
        let r = m.rows().min(m.cols());
        let k = (r / 2).max(1);
        let svd = Svd::compute(&m).unwrap();
        let trunc = TruncatedSvd::compute(&m, k).unwrap();
        let measured = trunc.reconstruction_error(&m).unwrap();
        let tail = svd.truncation_error(k);
        assert!(
            (measured - tail).abs() <= 1e-6 * (1.0 + tail),
            "seed {seed}"
        );
    }
}

#[test]
fn split_cols_then_hstack_roundtrips() {
    for seed in 0..CASES {
        let m = random_matrix(6, 12, seed);
        let g = (seed as usize % 4 + 1).min(m.cols());
        let parts = m.split_cols(g).unwrap();
        assert_eq!(Matrix::hstack(&parts).unwrap(), m, "seed {seed}");
    }
}

#[test]
fn kron_dimensions_multiply() {
    for seed in 0..CASES {
        let a = random_matrix(4, 4, seed);
        let b = random_matrix(3, 3, seed + 5000);
        let k = kron(&a, &b);
        assert_eq!(k.rows(), a.rows() * b.rows());
        assert_eq!(k.cols(), a.cols() * b.cols());
    }
}

#[test]
fn identity_kron_matvec_applies_blockwise() {
    for seed in 0..CASES {
        // (I_n ⊗ B) x  ==  concatenation of B x_i over the n slices of x.
        let b = random_matrix(4, 3, seed);
        let n = seed as usize % 3 + 1;
        let big = identity_kron(n, &b);
        let x: Vec<f64> = (0..n * b.cols()).map(|i| (i as f64) * 0.25 - 1.0).collect();
        let full = big.matvec(&x).unwrap();
        for blk in 0..n {
            let xi = &x[blk * b.cols()..(blk + 1) * b.cols()];
            let yi = b.matvec(xi).unwrap();
            for (r, &want) in yi.iter().enumerate() {
                assert!(
                    (full[blk * b.rows() + r] - want).abs() < 1e-9,
                    "seed {seed}"
                );
            }
        }
    }
}

#[test]
fn block_diag_preserves_frobenius_norm_squared() {
    for seed in 0..CASES {
        let a = random_matrix(4, 4, seed);
        let b = random_matrix(3, 5, seed + 7000);
        let d = block_diag(&[a.clone(), b.clone()]).unwrap();
        let want = (a.frobenius_norm().powi(2) + b.frobenius_norm().powi(2)).sqrt();
        assert!((d.frobenius_norm() - want).abs() < 1e-9, "seed {seed}");
    }
}
