//! The scalar abstraction underneath every kernel in this crate.
//!
//! [`Scalar`] is the contract a floating-point element type must satisfy for
//! [`Matrix`](crate::Matrix), the Jacobi SVD, QR, the solvers, the norms and
//! the Kronecker helpers to compile for it. Exactly two implementations
//! exist — [`f64`] (the bit-exact reference the experiment goldens are pinned
//! to) and [`f32`] (the half-width fast path) — and the differential test
//! harness (`tests/differential.rs`) certifies every `f32` kernel against the
//! `f64` oracle under per-kernel error budgets.
//!
//! The trait deliberately exposes *tolerances* as associated constants
//! ([`Scalar::JACOBI_TOL`], [`Scalar::POWER_ITER_TOL`],
//! [`Scalar::SOLVE_TOL`]): an iterative kernel converges to a residual that
//! scales with the unit roundoff of its element type, so the thresholds must
//! widen with the type. The `f64` constants are byte-for-byte the values the
//! kernels used before the crate went generic, which is what keeps the
//! `Matrix<f64>` path bit-identical to the pre-generic implementation.

use core::fmt::{Debug, Display};
use core::iter::Sum;
use core::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// A floating-point element type the linear-algebra kernels are generic over.
///
/// Implemented for `f32` and `f64` only; the arithmetic supertraits mirror
/// what the kernels actually do, and the associated constants pin the
/// per-width convergence and singularity tolerances.
pub trait Scalar:
    Copy
    + Default
    + PartialEq
    + PartialOrd
    + Debug
    + Display
    + Send
    + Sync
    + 'static
    + Add<Output = Self>
    + Sub<Output = Self>
    + Mul<Output = Self>
    + Div<Output = Self>
    + Neg<Output = Self>
    + AddAssign
    + SubAssign
    + MulAssign
    + DivAssign
    + Sum
{
    /// The additive identity.
    const ZERO: Self;
    /// The multiplicative identity.
    const ONE: Self;
    /// Two, used by the Jacobi rotation and Householder reflection formulas.
    const TWO: Self;
    /// Machine epsilon of the type.
    const EPSILON: Self;
    /// Smallest positive normal value.
    const MIN_POSITIVE: Self;
    /// Archimedes' constant at this width (Box–Muller).
    const PI: Self;
    /// Relative off-diagonal tolerance of the one-sided Jacobi SVD.
    const JACOBI_TOL: Self;
    /// Convergence tolerance of the spectral-norm power iteration.
    const POWER_ITER_TOL: Self;
    /// Diagonal magnitude below which a triangular solve reports a singular
    /// system.
    const SOLVE_TOL: Self;
    /// A tiny positive floor keeping relative-change convergence tests finite
    /// near zero.
    const TINY: Self;
    /// Short lowercase type name (`"f32"` / `"f64"`), used to tag benchmark
    /// records and test diagnostics.
    const NAME: &'static str;

    /// Rounds an `f64` into this type (identity for `f64`).
    fn from_f64(x: f64) -> Self;
    /// Widens this value to `f64` (identity for `f64`).
    fn to_f64(self) -> f64;
    /// Absolute value.
    fn abs(self) -> Self;
    /// Square root.
    fn sqrt(self) -> Self;
    /// Sign of the value (`±1`, propagating the IEEE sign of zero).
    fn signum(self) -> Self;
    /// Fused multiply-add `self * a + b`.
    ///
    /// No current kernel uses it (the `f64` reference must keep its exact
    /// historical rounding), but SIMD-friendly backends building on this
    /// trait are expected to.
    fn mul_add(self, a: Self, b: Self) -> Self;
    /// IEEE maximum (NaN-ignoring, like `f64::max`).
    fn max(self, other: Self) -> Self;
    /// IEEE minimum (NaN-ignoring, like `f64::min`).
    fn min(self, other: Self) -> Self;

    /// Computes the three Gram sums `(Σ up², Σ uq², Σ up·uq)` of one Jacobi
    /// column pair in a single pass — the inner reduction the one-sided
    /// Jacobi SVD spends most of its time in.
    ///
    /// The default implementation is the strict serial accumulation the
    /// `f64` reference path is pinned to byte-for-byte. A width without a
    /// bit-exactness contract may override it with a reassociated reduction:
    /// `f32` uses eight independent accumulator lanes per sum, which breaks
    /// the loop-carried addition dependency and lets the compiler vectorize
    /// the pass — the bulk of the `f32` SVD speedup. The differential test
    /// suite bounds the reassociation error together with everything else.
    fn jacobi_gram(up: &[Self], uq: &[Self]) -> (Self, Self, Self) {
        let mut alpha = Self::ZERO;
        let mut beta = Self::ZERO;
        let mut gamma = Self::ZERO;
        for (&up_i, &uq_i) in up.iter().zip(uq.iter()) {
            alpha += up_i * up_i;
            beta += uq_i * uq_i;
            gamma += up_i * uq_i;
        }
        (alpha, beta, gamma)
    }
}

impl Scalar for f64 {
    const ZERO: Self = 0.0;
    const ONE: Self = 1.0;
    const TWO: Self = 2.0;
    const EPSILON: Self = f64::EPSILON;
    const MIN_POSITIVE: Self = f64::MIN_POSITIVE;
    const PI: Self = core::f64::consts::PI;
    const JACOBI_TOL: Self = 1e-12;
    const POWER_ITER_TOL: Self = 1e-12;
    const SOLVE_TOL: Self = 1e-14;
    const TINY: Self = 1e-30;
    const NAME: &'static str = "f64";

    #[inline]
    fn from_f64(x: f64) -> Self {
        x
    }
    #[inline]
    fn to_f64(self) -> f64 {
        self
    }
    #[inline]
    fn abs(self) -> Self {
        f64::abs(self)
    }
    #[inline]
    fn sqrt(self) -> Self {
        f64::sqrt(self)
    }
    #[inline]
    fn signum(self) -> Self {
        f64::signum(self)
    }
    #[inline]
    fn mul_add(self, a: Self, b: Self) -> Self {
        f64::mul_add(self, a, b)
    }
    #[inline]
    fn max(self, other: Self) -> Self {
        f64::max(self, other)
    }
    #[inline]
    fn min(self, other: Self) -> Self {
        f64::min(self, other)
    }
}

impl Scalar for f32 {
    const ZERO: Self = 0.0;
    const ONE: Self = 1.0;
    const TWO: Self = 2.0;
    const EPSILON: Self = f32::EPSILON;
    const MIN_POSITIVE: Self = f32::MIN_POSITIVE;
    const PI: Self = core::f32::consts::PI;
    // eps_f32 ≈ 1.19e-7: stopping the Jacobi sweeps around 10·eps leaves the
    // off-diagonal mass at rounding level without burning sweeps that cannot
    // improve a single-precision result.
    const JACOBI_TOL: Self = 1e-6;
    const POWER_ITER_TOL: Self = 1e-6;
    const SOLVE_TOL: Self = 1e-6;
    const TINY: Self = 1e-30;
    const NAME: &'static str = "f32";

    #[inline]
    fn from_f64(x: f64) -> Self {
        x as f32
    }
    #[inline]
    fn to_f64(self) -> f64 {
        f64::from(self)
    }
    #[inline]
    fn abs(self) -> Self {
        f32::abs(self)
    }
    #[inline]
    fn sqrt(self) -> Self {
        f32::sqrt(self)
    }
    #[inline]
    fn signum(self) -> Self {
        f32::signum(self)
    }
    #[inline]
    fn mul_add(self, a: Self, b: Self) -> Self {
        f32::mul_add(self, a, b)
    }
    #[inline]
    fn max(self, other: Self) -> Self {
        f32::max(self, other)
    }
    #[inline]
    fn min(self, other: Self) -> Self {
        f32::min(self, other)
    }

    fn jacobi_gram(up: &[Self], uq: &[Self]) -> (Self, Self, Self) {
        // Eight independent lanes per sum: one AVX register's worth of f32,
        // letting the three reductions run at streaming rate instead of one
        // element per fp-add latency. Reassociation changes the rounding —
        // admissible for f32, whose contract is the differential budget, not
        // bit-exactness.
        const LANES: usize = 8;
        let mut alpha = [0.0f32; LANES];
        let mut beta = [0.0f32; LANES];
        let mut gamma = [0.0f32; LANES];
        let mut up_chunks = up.chunks_exact(LANES);
        let mut uq_chunks = uq.chunks_exact(LANES);
        for (up_c, uq_c) in up_chunks.by_ref().zip(uq_chunks.by_ref()) {
            let u: [f32; LANES] = up_c.try_into().expect("chunks_exact yields full chunks");
            let v: [f32; LANES] = uq_c.try_into().expect("chunks_exact yields full chunks");
            if cfg!(target_feature = "fma") {
                // With hardware FMA (x86-64-v3 and newer — what
                // `.cargo/config.toml` targets) each lane is one fused op.
                for lane in 0..LANES {
                    alpha[lane] = u[lane].mul_add(u[lane], alpha[lane]);
                    beta[lane] = v[lane].mul_add(v[lane], beta[lane]);
                    gamma[lane] = u[lane].mul_add(v[lane], gamma[lane]);
                }
            } else {
                // Without the feature, `mul_add` lowers to a libm call that
                // is far slower than separate multiply + add; keep the
                // two-op form so baseline builds stay fast.
                for lane in 0..LANES {
                    alpha[lane] += u[lane] * u[lane];
                    beta[lane] += v[lane] * v[lane];
                    gamma[lane] += u[lane] * v[lane];
                }
            }
        }
        let (mut a, mut b, mut g) = (0.0f32, 0.0f32, 0.0f32);
        for lane in 0..LANES {
            a += alpha[lane];
            b += beta[lane];
            g += gamma[lane];
        }
        for (&u, &v) in up_chunks.remainder().iter().zip(uq_chunks.remainder()) {
            a += u * u;
            b += v * v;
            g += u * v;
        }
        (a, b, g)
    }
}

/// The numeric width an SVD-bound pipeline runs its decomposition kernels in.
///
/// `F64` is the bit-exact reference every golden table and figure is pinned
/// to; `F32` runs the Jacobi SVDs (the dominant cost of the experiment
/// sweeps) in single precision and widens the factors back to `f64` for
/// reporting, trading a documented reconstruction-error budget (see the
/// differential test suite) for throughput.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub enum Precision {
    /// Double precision everywhere — the reference path.
    #[default]
    F64,
    /// Single-precision decomposition kernels, `f64` reporting.
    F32,
}

impl Precision {
    /// The [`Scalar::NAME`]-style tag of this precision (`"f64"` / `"f32"`).
    pub fn name(self) -> &'static str {
        match self {
            Precision::F64 => "f64",
            Precision::F32 => "f32",
        }
    }
}

impl Display for Precision {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f64_constants_match_the_pre_generic_kernels() {
        // These values are part of the bit-exactness contract: the generic
        // kernels instantiated at f64 must behave exactly like the concrete
        // implementation they replaced.
        assert_eq!(<f64 as Scalar>::JACOBI_TOL, 1e-12);
        assert_eq!(<f64 as Scalar>::POWER_ITER_TOL, 1e-12);
        assert_eq!(<f64 as Scalar>::SOLVE_TOL, 1e-14);
        assert_eq!(<f64 as Scalar>::EPSILON, f64::EPSILON);
    }

    #[test]
    fn conversions_round_trip() {
        assert_eq!(<f64 as Scalar>::from_f64(1.5).to_f64(), 1.5);
        assert_eq!(<f32 as Scalar>::from_f64(1.5).to_f64(), 1.5);
        // Rounding to f32 loses the low mantissa bits, widening is exact.
        let x = 0.1_f64;
        assert_ne!(<f32 as Scalar>::from_f64(x).to_f64(), x);
        assert_eq!(<f32 as Scalar>::from_f64(x), 0.1_f32);
    }

    #[test]
    fn names_tag_the_widths() {
        assert_eq!(<f32 as Scalar>::NAME, "f32");
        assert_eq!(<f64 as Scalar>::NAME, "f64");
        assert_eq!(Precision::F32.name(), "f32");
        assert_eq!(Precision::default(), Precision::F64);
        assert_eq!(format!("{}", Precision::F32), "f32");
    }
}
