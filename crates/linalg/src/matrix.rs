//! Dense, row-major matrix, generic over the [`Scalar`] element type.
//!
//! [`Matrix`] is the workhorse container of the whole workspace: im2col
//! matrixized convolution weights, low-rank factors, SDK mappings and padding
//! matrices are all represented as `Matrix` values. The element type defaults
//! to `f64` (the bit-exact reference precision every golden table and figure
//! is pinned to), so `Matrix` written without parameters everywhere else in
//! the workspace still means exactly what it did before the crate went
//! generic; `Matrix<f32>` is the SIMD-friendly fast path certified against
//! the `f64` oracle by the differential test suite.

use crate::scalar::Scalar;
use crate::{Error, Result};

/// Square tile edge used by the blocked [`Matrix::transpose`]. A 32×32 tile
/// of `f64` is 8 KiB — two of them (source walk + destination walk) sit
/// comfortably in a 32 KiB L1 cache.
const TRANSPOSE_TILE: usize = 32;

/// Working-set target (in elements) for one right-hand-side stripe of the
/// blocked [`Matrix::matmul`]: 32 Ki elements = 256 KiB, sized for the L2
/// cache so a stripe is streamed once per full pass over the output instead
/// of once per output row.
const MATMUL_STRIPE_ELEMS: usize = 32 * 1024;

/// Minimum `k`-stripe depth of the blocked [`Matrix::matmul`]; below this the
/// stripe bookkeeping costs more than the cache reuse saves.
const MATMUL_MIN_STRIPE: usize = 16;

/// A dense matrix of [`Scalar`] values stored in row-major order.
///
/// The type is deliberately simple: it owns a `Vec<S>` and its shape.
/// All operations that can fail due to shape incompatibilities return
/// [`Result`] instead of panicking, so that higher layers can surface
/// configuration errors (e.g. an invalid rank or group count) gracefully.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix<S: Scalar = f64> {
    rows: usize,
    cols: usize,
    data: Vec<S>,
}

impl<S: Scalar> Matrix<S> {
    /// Creates a matrix from a flat row-major buffer.
    ///
    /// # Errors
    ///
    /// Returns [`Error::DimensionMismatch`] if `data.len() != rows * cols`
    /// and [`Error::EmptyMatrix`] if either dimension is zero.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<S>) -> Result<Self> {
        if rows == 0 || cols == 0 {
            return Err(Error::EmptyMatrix);
        }
        if data.len() != rows * cols {
            return Err(Error::DimensionMismatch {
                expected: rows * cols,
                actual: data.len(),
            });
        }
        Ok(Self { rows, cols, data })
    }

    /// Creates a matrix from a slice of rows.
    ///
    /// # Errors
    ///
    /// Returns [`Error::EmptyMatrix`] for an empty row list or empty rows and
    /// [`Error::DimensionMismatch`] if rows have differing lengths.
    pub fn from_rows(rows: &[Vec<S>]) -> Result<Self> {
        if rows.is_empty() || rows[0].is_empty() {
            return Err(Error::EmptyMatrix);
        }
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for row in rows {
            if row.len() != cols {
                return Err(Error::DimensionMismatch {
                    expected: cols,
                    actual: row.len(),
                });
            }
            data.extend_from_slice(row);
        }
        Ok(Self {
            rows: rows.len(),
            cols,
            data,
        })
    }

    /// Creates an all-zero matrix.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero; zero-sized matrices are never
    /// meaningful in this workspace and indicate a logic error upstream.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "matrix dimensions must be non-zero");
        Self {
            rows,
            cols,
            data: vec![S::ZERO; rows * cols],
        }
    }

    /// Creates a matrix filled with a constant value.
    pub fn filled(rows: usize, cols: usize, value: S) -> Self {
        assert!(rows > 0 && cols > 0, "matrix dimensions must be non-zero");
        Self {
            rows,
            cols,
            data: vec![value; rows * cols],
        }
    }

    /// Creates the `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m.set(i, i, S::ONE);
        }
        m
    }

    /// Creates a matrix by evaluating `f(row, col)` for every element.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> S) -> Self {
        assert!(rows > 0 && cols > 0, "matrix dimensions must be non-zero");
        let mut data = Vec::with_capacity(rows * cols);
        for i in 0..rows {
            for j in 0..cols {
                data.push(f(i, j));
            }
        }
        Self { rows, cols, data }
    }

    /// Creates a diagonal matrix from the given diagonal entries.
    pub fn from_diag(diag: &[S]) -> Self {
        let n = diag.len();
        let mut m = Self::zeros(n, n);
        for (i, &d) in diag.iter().enumerate() {
            m.set(i, i, d);
        }
        m
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Shape as a `(rows, cols)` pair.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Returns `true` if the matrix holds no elements. Always `false` for a
    /// successfully constructed matrix but provided for API completeness.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Returns `true` if the matrix is square.
    #[inline]
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// Immutable access to the underlying row-major buffer.
    #[inline]
    pub fn as_slice(&self) -> &[S] {
        &self.data
    }

    /// Mutable access to the underlying row-major buffer.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [S] {
        &mut self.data
    }

    /// Element access.
    ///
    /// # Panics
    ///
    /// Panics when the indices are out of bounds (internal invariant; all
    /// public entry points validate shapes up front).
    #[inline]
    pub fn get(&self, row: usize, col: usize) -> S {
        debug_assert!(row < self.rows && col < self.cols);
        self.data[row * self.cols + col]
    }

    /// Checked element access.
    pub fn try_get(&self, row: usize, col: usize) -> Result<S> {
        if row >= self.rows {
            return Err(Error::OutOfBounds {
                index: row,
                bound: self.rows,
                what: "row",
            });
        }
        if col >= self.cols {
            return Err(Error::OutOfBounds {
                index: col,
                bound: self.cols,
                what: "column",
            });
        }
        Ok(self.get(row, col))
    }

    /// Sets a single element.
    #[inline]
    pub fn set(&mut self, row: usize, col: usize, value: S) {
        debug_assert!(row < self.rows && col < self.cols);
        self.data[row * self.cols + col] = value;
    }

    /// Returns a copy of row `row`.
    pub fn row(&self, row: usize) -> Result<Vec<S>> {
        if row >= self.rows {
            return Err(Error::OutOfBounds {
                index: row,
                bound: self.rows,
                what: "row",
            });
        }
        Ok(self.data[row * self.cols..(row + 1) * self.cols].to_vec())
    }

    /// Returns a copy of column `col`.
    pub fn col(&self, col: usize) -> Result<Vec<S>> {
        if col >= self.cols {
            return Err(Error::OutOfBounds {
                index: col,
                bound: self.cols,
                what: "column",
            });
        }
        Ok((0..self.rows).map(|i| self.get(i, col)).collect())
    }

    /// Returns the transpose of the matrix.
    ///
    /// The copy is blocked into [`TRANSPOSE_TILE`]-sized square tiles so that
    /// both the row-major read and the column-major write stay within cache
    /// lines; on tall/wide matrices this avoids one cache miss per element.
    pub fn transpose(&self) -> Self {
        let mut out = Self::zeros(self.cols, self.rows);
        for i0 in (0..self.rows).step_by(TRANSPOSE_TILE) {
            let i1 = (i0 + TRANSPOSE_TILE).min(self.rows);
            for j0 in (0..self.cols).step_by(TRANSPOSE_TILE) {
                let j1 = (j0 + TRANSPOSE_TILE).min(self.cols);
                for i in i0..i1 {
                    let row = &self.data[i * self.cols + j0..i * self.cols + j1];
                    for (j, &x) in row.iter().enumerate() {
                        out.data[(j0 + j) * self.rows + i] = x;
                    }
                }
            }
        }
        out
    }

    /// Matrix multiplication `self * rhs`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::ShapeMismatch`] when the inner dimensions disagree.
    pub fn matmul(&self, rhs: &Self) -> Result<Self> {
        if self.cols != rhs.rows {
            return Err(Error::ShapeMismatch {
                left: self.shape(),
                right: rhs.shape(),
                op: "matmul",
            });
        }
        let mut out = Self::zeros(self.rows, rhs.cols);
        // i-k-j loop order keeps the inner loop streaming over contiguous rows
        // of both the output and the right-hand side. The k loop is split into
        // ascending cache-sized stripes so one stripe of `rhs` rows is reused
        // across every output row instead of re-streaming the whole right-hand
        // side per row; since each output element still accumulates its
        // contributions in ascending-k order, the result is bit-identical to
        // the unstriped loop.
        let stripe = (MATMUL_STRIPE_ELEMS / rhs.cols.max(1))
            .max(MATMUL_MIN_STRIPE)
            .min(self.cols);
        for k0 in (0..self.cols).step_by(stripe) {
            let k1 = (k0 + stripe).min(self.cols);
            for i in 0..self.rows {
                let lhs_row = &self.data[i * self.cols..(i + 1) * self.cols];
                let out_row = &mut out.data[i * rhs.cols..(i + 1) * rhs.cols];
                for (k, &a) in lhs_row.iter().enumerate().take(k1).skip(k0) {
                    if a == S::ZERO {
                        continue;
                    }
                    let rhs_row = &rhs.data[k * rhs.cols..(k + 1) * rhs.cols];
                    for (o, &b) in out_row.iter_mut().zip(rhs_row.iter()) {
                        *o += a * b;
                    }
                }
            }
        }
        Ok(out)
    }

    /// Matrix-vector multiplication `self * v`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::ShapeMismatch`] when `v.len() != self.cols()`.
    pub fn matvec(&self, v: &[S]) -> Result<Vec<S>> {
        if v.len() != self.cols {
            return Err(Error::ShapeMismatch {
                left: self.shape(),
                right: (v.len(), 1),
                op: "matvec",
            });
        }
        // Note: `self.cols` is non-zero by construction, so `chunks` is safe.
        let mut out = vec![S::ZERO; self.rows];
        for (out_i, row) in out.iter_mut().zip(self.data.chunks(self.cols)) {
            *out_i = row.iter().zip(v.iter()).map(|(&a, &b)| a * b).sum();
        }
        Ok(out)
    }

    /// Element-wise addition.
    pub fn add(&self, rhs: &Self) -> Result<Self> {
        self.zip_with(rhs, "add", |a, b| a + b)
    }

    /// Element-wise subtraction.
    pub fn sub(&self, rhs: &Self) -> Result<Self> {
        self.zip_with(rhs, "sub", |a, b| a - b)
    }

    /// Element-wise (Hadamard) product.
    pub fn hadamard(&self, rhs: &Self) -> Result<Self> {
        self.zip_with(rhs, "hadamard", |a, b| a * b)
    }

    fn zip_with(&self, rhs: &Self, op: &'static str, f: impl Fn(S, S) -> S) -> Result<Self> {
        if self.shape() != rhs.shape() {
            return Err(Error::ShapeMismatch {
                left: self.shape(),
                right: rhs.shape(),
                op,
            });
        }
        let data = self
            .data
            .iter()
            .zip(rhs.data.iter())
            .map(|(&a, &b)| f(a, b))
            .collect();
        Ok(Self {
            rows: self.rows,
            cols: self.cols,
            data,
        })
    }

    /// Multiplies every element by a scalar.
    pub fn scale(&self, s: S) -> Self {
        Self {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&x| x * s).collect(),
        }
    }

    /// Applies `f` to every element, returning a new matrix.
    pub fn map(&self, f: impl Fn(S) -> S) -> Self {
        Self {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }

    /// Extracts the sub-matrix covering rows `row0..row0+nrows` and columns
    /// `col0..col0+ncols`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::OutOfBounds`] if the requested block does not fit and
    /// [`Error::EmptyMatrix`] when `nrows` or `ncols` is zero.
    pub fn submatrix(&self, row0: usize, col0: usize, nrows: usize, ncols: usize) -> Result<Self> {
        if nrows == 0 || ncols == 0 {
            return Err(Error::EmptyMatrix);
        }
        if row0 + nrows > self.rows {
            return Err(Error::OutOfBounds {
                index: row0 + nrows,
                bound: self.rows + 1,
                what: "row range end",
            });
        }
        if col0 + ncols > self.cols {
            return Err(Error::OutOfBounds {
                index: col0 + ncols,
                bound: self.cols + 1,
                what: "column range end",
            });
        }
        let mut data = Vec::with_capacity(nrows * ncols);
        for i in 0..nrows {
            let start = (row0 + i) * self.cols + col0;
            data.extend_from_slice(&self.data[start..start + ncols]);
        }
        Ok(Self {
            rows: nrows,
            cols: ncols,
            data,
        })
    }

    /// Splits the matrix column-wise into `groups` contiguous blocks.
    ///
    /// When `cols` is not divisible by `groups`, the leading blocks receive
    /// one extra column each (so the block widths differ by at most one).
    /// This is the partition used by the group low-rank decomposition
    /// `W = [W_1, …, W_g]`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidRank`] if `groups` is zero or exceeds the
    /// number of columns.
    pub fn split_cols(&self, groups: usize) -> Result<Vec<Self>> {
        if groups == 0 || groups > self.cols {
            return Err(Error::InvalidRank {
                requested: groups,
                max: self.cols,
            });
        }
        let base = self.cols / groups;
        let extra = self.cols % groups;
        let mut out = Vec::with_capacity(groups);
        let mut start = 0;
        for g in 0..groups {
            let width = base + usize::from(g < extra);
            out.push(self.submatrix(0, start, self.rows, width)?);
            start += width;
        }
        Ok(out)
    }

    /// Splits the matrix row-wise into `groups` contiguous blocks, mirroring
    /// [`Matrix::split_cols`].
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidRank`] if `groups` is zero or exceeds the
    /// number of rows.
    pub fn split_rows(&self, groups: usize) -> Result<Vec<Self>> {
        if groups == 0 || groups > self.rows {
            return Err(Error::InvalidRank {
                requested: groups,
                max: self.rows,
            });
        }
        let base = self.rows / groups;
        let extra = self.rows % groups;
        let mut out = Vec::with_capacity(groups);
        let mut start = 0;
        for g in 0..groups {
            let height = base + usize::from(g < extra);
            out.push(self.submatrix(start, 0, height, self.cols)?);
            start += height;
        }
        Ok(out)
    }

    /// Horizontally concatenates matrices (same row count).
    ///
    /// # Errors
    ///
    /// Returns [`Error::EmptyMatrix`] for an empty list and
    /// [`Error::ShapeMismatch`] when row counts differ.
    pub fn hstack(blocks: &[Self]) -> Result<Self> {
        if blocks.is_empty() {
            return Err(Error::EmptyMatrix);
        }
        let rows = blocks[0].rows;
        let mut cols = 0;
        for b in blocks {
            if b.rows != rows {
                return Err(Error::ShapeMismatch {
                    left: blocks[0].shape(),
                    right: b.shape(),
                    op: "hstack",
                });
            }
            cols += b.cols;
        }
        let mut data = Vec::with_capacity(rows * cols);
        for i in 0..rows {
            for b in blocks {
                data.extend_from_slice(&b.data[i * b.cols..(i + 1) * b.cols]);
            }
        }
        Ok(Self { rows, cols, data })
    }

    /// Vertically concatenates matrices (same column count).
    ///
    /// # Errors
    ///
    /// Returns [`Error::EmptyMatrix`] for an empty list and
    /// [`Error::ShapeMismatch`] when column counts differ.
    pub fn vstack(blocks: &[Self]) -> Result<Self> {
        if blocks.is_empty() {
            return Err(Error::EmptyMatrix);
        }
        let cols = blocks[0].cols;
        let mut rows = 0;
        for b in blocks {
            if b.cols != cols {
                return Err(Error::ShapeMismatch {
                    left: blocks[0].shape(),
                    right: b.shape(),
                    op: "vstack",
                });
            }
            rows += b.rows;
        }
        let mut data = Vec::with_capacity(rows * cols);
        for b in blocks {
            data.extend_from_slice(&b.data);
        }
        Ok(Self { rows, cols, data })
    }

    /// Writes `block` into `self` with its top-left corner at `(row0, col0)`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::OutOfBounds`] if the block does not fit.
    pub fn set_block(&mut self, row0: usize, col0: usize, block: &Self) -> Result<()> {
        if row0 + block.rows > self.rows {
            return Err(Error::OutOfBounds {
                index: row0 + block.rows,
                bound: self.rows + 1,
                what: "row range end",
            });
        }
        if col0 + block.cols > self.cols {
            return Err(Error::OutOfBounds {
                index: col0 + block.cols,
                bound: self.cols + 1,
                what: "column range end",
            });
        }
        for i in 0..block.rows {
            let dst = (row0 + i) * self.cols + col0;
            self.data[dst..dst + block.cols]
                .copy_from_slice(&block.data[i * block.cols..(i + 1) * block.cols]);
        }
        Ok(())
    }

    /// Frobenius norm `‖A‖_F = sqrt(Σ a_ij²)`.
    pub fn frobenius_norm(&self) -> S {
        self.data.iter().map(|&x| x * x).sum::<S>().sqrt()
    }

    /// Sum of all elements.
    pub fn sum(&self) -> S {
        self.data.iter().copied().sum()
    }

    /// Largest absolute element value.
    pub fn max_abs(&self) -> S {
        self.data.iter().fold(S::ZERO, |m, &x| m.max(x.abs()))
    }

    /// Number of elements whose absolute value exceeds `threshold`.
    pub fn count_nonzero(&self, threshold: S) -> usize {
        self.data.iter().filter(|&&x| x.abs() > threshold).count()
    }

    /// Fraction of elements whose absolute value is at most `threshold`
    /// (the sparsity of the matrix).
    pub fn sparsity(&self, threshold: S) -> f64 {
        1.0 - self.count_nonzero(threshold) as f64 / self.len() as f64
    }

    /// Returns `true` if every corresponding pair of elements differs by at
    /// most `tol` in absolute value.
    pub fn approx_eq(&self, other: &Self, tol: S) -> bool {
        self.shape() == other.shape()
            && self
                .data
                .iter()
                .zip(other.data.iter())
                .all(|(&a, &b)| (a - b).abs() <= tol)
    }

    /// Converts the matrix to another scalar width, rounding every element
    /// through `f64` (exact when widening, round-to-nearest when narrowing).
    ///
    /// This is the bridge between the `f64` reference pipeline and the `f32`
    /// fast path: `m.cast::<f32>()` is the single-precision image of `m`,
    /// and `m32.cast::<f64>()` widens results back for reporting.
    pub fn cast<T: Scalar>(&self) -> Matrix<T> {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&x| T::from_f64(x.to_f64())).collect(),
        }
    }

    /// Trace (sum of diagonal elements) of a square matrix.
    ///
    /// # Errors
    ///
    /// Returns [`Error::ShapeMismatch`] for non-square matrices.
    pub fn trace(&self) -> Result<S> {
        if !self.is_square() {
            return Err(Error::ShapeMismatch {
                left: self.shape(),
                right: self.shape(),
                op: "trace",
            });
        }
        Ok((0..self.rows).map(|i| self.get(i, i)).sum())
    }
}

impl<S: Scalar> core::ops::Add for &Matrix<S> {
    type Output = Result<Matrix<S>>;

    fn add(self, rhs: &Matrix<S>) -> Self::Output {
        Matrix::add(self, rhs)
    }
}

impl<S: Scalar> core::ops::Sub for &Matrix<S> {
    type Output = Result<Matrix<S>>;

    fn sub(self, rhs: &Matrix<S>) -> Self::Output {
        Matrix::sub(self, rhs)
    }
}

impl<S: Scalar> core::ops::Mul for &Matrix<S> {
    type Output = Result<Matrix<S>>;

    fn mul(self, rhs: &Matrix<S>) -> Self::Output {
        self.matmul(rhs)
    }
}

impl<S: Scalar> core::fmt::Display for Matrix<S> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        let max_rows = 8.min(self.rows);
        for i in 0..max_rows {
            write!(f, "  [")?;
            let max_cols = 8.min(self.cols);
            for j in 0..max_cols {
                write!(f, "{:>10.4}", self.get(i, j))?;
                if j + 1 < max_cols {
                    write!(f, ", ")?;
                }
            }
            if self.cols > max_cols {
                write!(f, ", …")?;
            }
            writeln!(f, "]")?;
        }
        if self.rows > max_rows {
            writeln!(f, "  …")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Matrix {
        Matrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]).unwrap()
    }

    #[test]
    fn from_vec_checks_length() {
        assert!(Matrix::from_vec(2, 2, vec![1.0; 4]).is_ok());
        assert!(matches!(
            Matrix::from_vec(2, 2, vec![1.0; 3]),
            Err(Error::DimensionMismatch { .. })
        ));
        assert!(matches!(
            Matrix::<f64>::from_vec(0, 2, vec![]),
            Err(Error::EmptyMatrix)
        ));
    }

    #[test]
    fn from_rows_rejects_ragged_input() {
        let err = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0]]).unwrap_err();
        assert!(matches!(err, Error::DimensionMismatch { .. }));
    }

    #[test]
    fn shape_accessors() {
        let m = sample();
        assert_eq!(m.rows(), 2);
        assert_eq!(m.cols(), 3);
        assert_eq!(m.shape(), (2, 3));
        assert_eq!(m.len(), 6);
        assert!(!m.is_empty());
        assert!(!m.is_square());
        assert!(Matrix::<f64>::identity(3).is_square());
    }

    #[test]
    fn identity_has_unit_diagonal() {
        let i = Matrix::<f64>::identity(4);
        for r in 0..4 {
            for c in 0..4 {
                assert_eq!(i.get(r, c), if r == c { 1.0 } else { 0.0 });
            }
        }
    }

    #[test]
    fn transpose_roundtrip() {
        let m = sample();
        let t = m.transpose();
        assert_eq!(t.shape(), (3, 2));
        assert_eq!(t.get(2, 1), 6.0);
        assert_eq!(t.transpose(), m);
    }

    #[test]
    fn matmul_matches_hand_computation() {
        let a = sample();
        let b = Matrix::from_rows(&[vec![7.0, 8.0], vec![9.0, 10.0], vec![11.0, 12.0]]).unwrap();
        let c = a.matmul(&b).unwrap();
        assert_eq!(c.shape(), (2, 2));
        assert_eq!(c.get(0, 0), 58.0);
        assert_eq!(c.get(0, 1), 64.0);
        assert_eq!(c.get(1, 0), 139.0);
        assert_eq!(c.get(1, 1), 154.0);
    }

    #[test]
    fn matmul_rejects_mismatched_shapes() {
        let a = sample();
        let err = a.matmul(&sample()).unwrap_err();
        assert!(matches!(err, Error::ShapeMismatch { op: "matmul", .. }));
    }

    #[test]
    fn matvec_matches_matmul() {
        let a = sample();
        let v = vec![1.0, 0.5, -1.0];
        let got = a.matvec(&v).unwrap();
        assert_eq!(got, vec![1.0 + 1.0 - 3.0, 4.0 + 2.5 - 6.0]);
    }

    #[test]
    fn identity_is_matmul_neutral() {
        let m = sample();
        let i3 = Matrix::identity(3);
        let i2 = Matrix::identity(2);
        assert!(m.matmul(&i3).unwrap().approx_eq(&m, 1e-12));
        assert!(i2.matmul(&m).unwrap().approx_eq(&m, 1e-12));
    }

    #[test]
    fn elementwise_ops() {
        let m = sample();
        let sum = m.add(&m).unwrap();
        assert_eq!(sum.get(1, 2), 12.0);
        let diff = m.sub(&m).unwrap();
        assert_eq!(diff.frobenius_norm(), 0.0);
        let had = m.hadamard(&m).unwrap();
        assert_eq!(had.get(1, 0), 16.0);
        let scaled = m.scale(2.0);
        assert_eq!(scaled.get(0, 1), 4.0);
        let mapped = m.map(|x| x - 1.0);
        assert_eq!(mapped.get(0, 0), 0.0);
    }

    #[test]
    fn submatrix_and_set_block() {
        let m = sample();
        let s = m.submatrix(0, 1, 2, 2).unwrap();
        assert_eq!(
            s,
            Matrix::from_rows(&[vec![2.0, 3.0], vec![5.0, 6.0]]).unwrap()
        );
        let mut z = Matrix::zeros(3, 3);
        z.set_block(1, 1, &s).unwrap();
        assert_eq!(z.get(2, 2), 6.0);
        assert_eq!(z.get(0, 0), 0.0);
        assert!(z.set_block(2, 2, &s).is_err());
        assert!(m.submatrix(0, 2, 2, 2).is_err());
    }

    #[test]
    fn split_cols_partitions_evenly_and_unevenly() {
        let m = Matrix::from_fn(2, 6, |i, j| (i * 6 + j) as f64);
        let parts = m.split_cols(3).unwrap();
        assert_eq!(parts.len(), 3);
        assert!(parts.iter().all(|p| p.shape() == (2, 2)));
        assert_eq!(Matrix::hstack(&parts).unwrap(), m);

        let m = Matrix::from_fn(2, 7, |i, j| (i * 7 + j) as f64);
        let parts = m.split_cols(3).unwrap();
        assert_eq!(parts[0].cols(), 3);
        assert_eq!(parts[1].cols(), 2);
        assert_eq!(parts[2].cols(), 2);
        assert_eq!(Matrix::hstack(&parts).unwrap(), m);
    }

    #[test]
    fn split_rows_is_inverse_of_vstack() {
        let m = Matrix::from_fn(5, 3, |i, j| (i * 3 + j) as f64);
        let parts = m.split_rows(2).unwrap();
        assert_eq!(parts[0].rows(), 3);
        assert_eq!(parts[1].rows(), 2);
        assert_eq!(Matrix::vstack(&parts).unwrap(), m);
    }

    #[test]
    fn split_rejects_bad_group_counts() {
        let m = sample();
        assert!(m.split_cols(0).is_err());
        assert!(m.split_cols(4).is_err());
        assert!(m.split_rows(2).is_ok());
        assert!(m.split_rows(3).is_err());
    }

    #[test]
    fn stack_shape_checks() {
        let a = Matrix::<f64>::zeros(2, 2);
        let b = Matrix::zeros(3, 2);
        assert!(Matrix::hstack(&[a.clone(), b.clone()]).is_err());
        assert!(Matrix::vstack(&[a, b]).is_ok());
        assert!(Matrix::<f64>::hstack(&[]).is_err());
    }

    #[test]
    fn norms_and_stats() {
        let m = Matrix::from_rows(&[vec![3.0, 0.0], vec![0.0, 4.0]]).unwrap();
        assert!((m.frobenius_norm() - 5.0).abs() < 1e-12);
        assert_eq!(m.sum(), 7.0);
        assert_eq!(m.max_abs(), 4.0);
        assert_eq!(m.count_nonzero(0.0), 2);
        assert!((m.sparsity(0.0) - 0.5).abs() < 1e-12);
        assert_eq!(m.trace().unwrap(), 7.0);
        assert!(sample().trace().is_err());
    }

    #[test]
    fn operator_overloads_delegate() {
        let m = sample();
        assert_eq!((&m + &m).unwrap(), m.scale(2.0));
        assert_eq!((&m - &m).unwrap(), Matrix::zeros(2, 3));
        let t = m.transpose();
        assert_eq!((&m * &t).unwrap().shape(), (2, 2));
    }

    #[test]
    fn display_is_bounded() {
        let big = Matrix::<f64>::zeros(20, 20);
        let s = format!("{big}");
        assert!(s.contains("Matrix 20x20"));
        assert!(s.lines().count() < 15);
    }

    #[test]
    fn row_and_col_extraction() {
        let m = sample();
        assert_eq!(m.row(1).unwrap(), vec![4.0, 5.0, 6.0]);
        assert_eq!(m.col(2).unwrap(), vec![3.0, 6.0]);
        assert!(m.row(2).is_err());
        assert!(m.col(3).is_err());
        assert!(m.try_get(1, 2).is_ok());
        assert!(m.try_get(2, 0).is_err());
    }

    #[test]
    fn from_diag_builds_diagonal() {
        let d = Matrix::from_diag(&[1.0, 2.0, 3.0]);
        assert_eq!(d.trace().unwrap(), 6.0);
        assert_eq!(d.count_nonzero(0.0), 3);
    }
}
