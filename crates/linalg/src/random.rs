//! Deterministic, seeded random matrix generators.
//!
//! Trained checkpoints of ResNet-20 / WRN16-4 are not available offline, so
//! the experiment harness synthesizes weight tensors from seeded random
//! distributions (see `DESIGN.md`, "Substitutions"). All generators take an
//! explicit `u64` seed so every table and figure regenerates identically.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::Matrix;

/// A matrix with i.i.d. normal entries `N(0, std²)`, generated from `seed`.
pub fn randn_matrix(rows: usize, cols: usize, std: f64, seed: u64) -> Matrix {
    let mut rng = StdRng::seed_from_u64(seed);
    Matrix::from_fn(rows, cols, |_, _| normal_sample(&mut rng) * std)
}

/// A matrix with i.i.d. uniform entries in `[low, high)`, generated from
/// `seed`.
pub fn uniform_matrix(rows: usize, cols: usize, low: f64, high: f64, seed: u64) -> Matrix {
    let mut rng = StdRng::seed_from_u64(seed);
    Matrix::from_fn(rows, cols, |_, _| rng.gen_range(low..high))
}

/// A matrix of exact rank `k` (product of two random Gaussian factors),
/// useful for testing rank-detection and truncation behaviour.
pub fn low_rank_matrix(rows: usize, cols: usize, k: usize, seed: u64) -> Matrix {
    let k = k.clamp(1, rows.min(cols));
    let l = randn_matrix(rows, k, 1.0, seed);
    let r = randn_matrix(k, cols, 1.0, seed.wrapping_add(0x9E37_79B9_7F4A_7C15));
    l.matmul(&r)
        .expect("factor shapes are consistent by construction")
}

/// Kaiming/He-style initialization for a convolutional weight matrix with
/// `fan_in` input connections: `N(0, sqrt(2 / fan_in)²)`.
pub fn kaiming_matrix(rows: usize, cols: usize, fan_in: usize, seed: u64) -> Matrix {
    let std = (2.0 / fan_in.max(1) as f64).sqrt();
    randn_matrix(rows, cols, std, seed)
}

/// Draws one standard-normal sample using the Box–Muller transform.
///
/// `rand`'s distribution machinery is avoided on purpose: the `rand_distr`
/// crate is not part of the allowed dependency set, and Box–Muller is
/// perfectly adequate here.
pub fn normal_sample<R: Rng>(rng: &mut R) -> f64 {
    // Reject u1 == 0 to keep ln() finite.
    let mut u1: f64 = rng.gen();
    while u1 <= f64::MIN_POSITIVE {
        u1 = rng.gen();
    }
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (2.0 * core::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::svd::Svd;

    #[test]
    fn same_seed_gives_same_matrix() {
        let a = randn_matrix(8, 8, 1.0, 123);
        let b = randn_matrix(8, 8, 1.0, 123);
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_give_different_matrices() {
        let a = randn_matrix(8, 8, 1.0, 123);
        let b = randn_matrix(8, 8, 1.0, 124);
        assert_ne!(a, b);
    }

    #[test]
    fn randn_moments_are_roughly_correct() {
        let a = randn_matrix(200, 200, 2.0, 7);
        let n = a.len() as f64;
        let mean = a.sum() / n;
        let var = a.as_slice().iter().map(|&x| (x - mean) * (x - mean)).sum::<f64>() / n;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var.sqrt() - 2.0).abs() < 0.1, "std {}", var.sqrt());
    }

    #[test]
    fn uniform_entries_respect_bounds() {
        let a = uniform_matrix(50, 50, -0.25, 0.75, 11);
        assert!(a.as_slice().iter().all(|&x| (-0.25..0.75).contains(&x)));
    }

    #[test]
    fn low_rank_matrix_has_requested_rank() {
        let a = low_rank_matrix(20, 15, 3, 99);
        let svd = Svd::compute(&a).unwrap();
        assert_eq!(svd.rank(1e-9), 3);
    }

    #[test]
    fn low_rank_matrix_clamps_rank() {
        let a = low_rank_matrix(4, 6, 100, 5);
        assert_eq!(a.shape(), (4, 6));
        let svd = Svd::compute(&a).unwrap();
        assert!(svd.rank(1e-9) <= 4);
    }

    #[test]
    fn kaiming_std_scales_with_fan_in() {
        let small_fan = kaiming_matrix(300, 100, 9, 1);
        let large_fan = kaiming_matrix(300, 100, 900, 1);
        let std = |m: &Matrix| {
            let n = m.len() as f64;
            let mean = m.sum() / n;
            (m.as_slice().iter().map(|&x| (x - mean) * (x - mean)).sum::<f64>() / n).sqrt()
        };
        // std ∝ 1/sqrt(fan_in), so the ratio should be about 10.
        let ratio = std(&small_fan) / std(&large_fan);
        assert!((ratio - 10.0).abs() < 1.0, "ratio {ratio}");
    }
}
