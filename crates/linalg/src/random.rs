//! Deterministic, seeded random generators.
//!
//! Trained checkpoints of ResNet-20 / WRN16-4 are not available offline, so
//! the experiment harness synthesizes weight tensors from seeded random
//! distributions (see `DESIGN.md`, "Substitutions"). All generators take an
//! explicit `u64` seed so every table and figure regenerates identically.
//!
//! The generator is a self-contained SplitMix64 stream ([`SeededRng`]) rather
//! than an external crate: the workspace builds offline, and the stream is
//! stable across platforms and releases, which is what pins the byte-identical
//! reproduction of every table and figure.

use crate::scalar::Scalar;
use crate::Matrix;

/// A small, fast, deterministic pseudo-random generator (SplitMix64).
///
/// SplitMix64 passes BigCrush and is more than adequate for synthesizing
/// weight tensors and shuffling mini-batches. The sequence produced by a
/// given seed is part of the reproduction contract: changing it changes every
/// synthesized weight, and with them the regenerated tables and figures.
#[derive(Debug, Clone)]
pub struct SeededRng {
    state: u64,
}

impl SeededRng {
    /// Creates a generator from a 64-bit seed.
    pub fn seed_from_u64(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A uniform `f64` in `[0, 1)` with 53 bits of precision. (Named
    /// `next_f64` rather than rand's `gen`, which is a reserved keyword in
    /// edition 2024.)
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniform draw from `range`: `low..high` for `f64`, `low..=high` for
    /// `usize`.
    pub fn gen_range<T, R: UniformRange<T>>(&mut self, range: R) -> T {
        range.sample(self)
    }
}

/// A range [`SeededRng::gen_range`] can draw from uniformly.
pub trait UniformRange<T> {
    /// Draws one uniform sample from the range.
    fn sample(self, rng: &mut SeededRng) -> T;
}

impl UniformRange<f64> for core::ops::Range<f64> {
    fn sample(self, rng: &mut SeededRng) -> f64 {
        self.start + (self.end - self.start) * rng.next_f64()
    }
}

impl UniformRange<usize> for core::ops::RangeInclusive<usize> {
    fn sample(self, rng: &mut SeededRng) -> usize {
        let (lo, hi) = (*self.start(), *self.end());
        debug_assert!(lo <= hi, "empty range");
        let span = (hi - lo) as u64 + 1;
        // Modulo bias is ~2^-64 · span here — irrelevant for shuffles.
        lo + (rng.next_u64() % span) as usize
    }
}

/// A matrix with i.i.d. normal entries `N(0, std²)`, generated from `seed`.
pub fn randn_matrix(rows: usize, cols: usize, std: f64, seed: u64) -> Matrix {
    randn_matrix_in::<f64>(rows, cols, std, seed)
}

/// [`randn_matrix`] at any scalar width.
///
/// Every generic fill samples the *same* `f64` SplitMix64/Box–Muller stream
/// and rounds each draw into `S`, so `randn_matrix_in::<f32>(..)` is exactly
/// the element-wise rounding of `randn_matrix(..)` — which is what lets the
/// differential test harness compare the two widths on identical inputs.
pub fn randn_matrix_in<S: Scalar>(rows: usize, cols: usize, std: f64, seed: u64) -> Matrix<S> {
    let mut rng = SeededRng::seed_from_u64(seed);
    Matrix::from_fn(rows, cols, |_, _| {
        S::from_f64(normal_sample(&mut rng) * std)
    })
}

/// A matrix with i.i.d. uniform entries in `[low, high)`, generated from
/// `seed`.
pub fn uniform_matrix(rows: usize, cols: usize, low: f64, high: f64, seed: u64) -> Matrix {
    uniform_matrix_in::<f64>(rows, cols, low, high, seed)
}

/// [`uniform_matrix`] at any scalar width (same stream, rounded draws).
pub fn uniform_matrix_in<S: Scalar>(
    rows: usize,
    cols: usize,
    low: f64,
    high: f64,
    seed: u64,
) -> Matrix<S> {
    let mut rng = SeededRng::seed_from_u64(seed);
    Matrix::from_fn(rows, cols, |_, _| S::from_f64(rng.gen_range(low..high)))
}

/// A matrix of exact rank `k` (product of two random Gaussian factors),
/// useful for testing rank-detection and truncation behaviour.
pub fn low_rank_matrix(rows: usize, cols: usize, k: usize, seed: u64) -> Matrix {
    low_rank_matrix_in::<f64>(rows, cols, k, seed)
}

/// [`low_rank_matrix`] at any scalar width: the Gaussian factors are the
/// rounded `f64` draws and the product is accumulated in `S`.
pub fn low_rank_matrix_in<S: Scalar>(rows: usize, cols: usize, k: usize, seed: u64) -> Matrix<S> {
    let k = k.clamp(1, rows.min(cols));
    let l = randn_matrix_in::<S>(rows, k, 1.0, seed);
    let r = randn_matrix_in::<S>(k, cols, 1.0, seed.wrapping_add(0x9E37_79B9_7F4A_7C15));
    l.matmul(&r)
        .expect("factor shapes are consistent by construction")
}

/// Kaiming/He-style initialization for a convolutional weight matrix with
/// `fan_in` input connections: `N(0, sqrt(2 / fan_in)²)`.
pub fn kaiming_matrix(rows: usize, cols: usize, fan_in: usize, seed: u64) -> Matrix {
    kaiming_matrix_in::<f64>(rows, cols, fan_in, seed)
}

/// [`kaiming_matrix`] at any scalar width (same stream, rounded draws).
pub fn kaiming_matrix_in<S: Scalar>(
    rows: usize,
    cols: usize,
    fan_in: usize,
    seed: u64,
) -> Matrix<S> {
    let std = (2.0 / fan_in.max(1) as f64).sqrt();
    randn_matrix_in::<S>(rows, cols, std, seed)
}

/// Draws one standard-normal sample using the Box–Muller transform.
pub fn normal_sample(rng: &mut SeededRng) -> f64 {
    // Reject u1 == 0 to keep ln() finite.
    let mut u1: f64 = rng.next_f64();
    while u1 <= f64::MIN_POSITIVE {
        u1 = rng.next_f64();
    }
    let u2: f64 = rng.next_f64();
    (-2.0 * u1.ln()).sqrt() * (2.0 * core::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::svd::Svd;

    #[test]
    fn same_seed_gives_same_matrix() {
        let a = randn_matrix(8, 8, 1.0, 123);
        let b = randn_matrix(8, 8, 1.0, 123);
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_give_different_matrices() {
        let a = randn_matrix(8, 8, 1.0, 123);
        let b = randn_matrix(8, 8, 1.0, 124);
        assert_ne!(a, b);
    }

    #[test]
    fn randn_moments_are_roughly_correct() {
        let a = randn_matrix(200, 200, 2.0, 7);
        let n = a.len() as f64;
        let mean = a.sum() / n;
        let var = a
            .as_slice()
            .iter()
            .map(|&x| (x - mean) * (x - mean))
            .sum::<f64>()
            / n;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var.sqrt() - 2.0).abs() < 0.1, "std {}", var.sqrt());
    }

    #[test]
    fn uniform_entries_respect_bounds() {
        let a = uniform_matrix(50, 50, -0.25, 0.75, 11);
        assert!(a.as_slice().iter().all(|&x| (-0.25..0.75).contains(&x)));
    }

    #[test]
    fn gen_range_inclusive_covers_every_value() {
        let mut rng = SeededRng::seed_from_u64(3);
        let mut seen = [false; 4];
        for _ in 0..256 {
            seen[rng.gen_range(0..=3usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn low_rank_matrix_has_requested_rank() {
        let a = low_rank_matrix(20, 15, 3, 99);
        let svd = Svd::compute(&a).unwrap();
        assert_eq!(svd.rank(1e-9), 3);
    }

    #[test]
    fn low_rank_matrix_clamps_rank() {
        let a = low_rank_matrix(4, 6, 100, 5);
        assert_eq!(a.shape(), (4, 6));
        let svd = Svd::compute(&a).unwrap();
        assert!(svd.rank(1e-9) <= 4);
    }

    #[test]
    fn kaiming_std_scales_with_fan_in() {
        let small_fan = kaiming_matrix(300, 100, 9, 1);
        let large_fan = kaiming_matrix(300, 100, 900, 1);
        let std = |m: &Matrix| {
            let n = m.len() as f64;
            let mean = m.sum() / n;
            (m.as_slice()
                .iter()
                .map(|&x| (x - mean) * (x - mean))
                .sum::<f64>()
                / n)
                .sqrt()
        };
        // std ∝ 1/sqrt(fan_in), so the ratio should be about 10.
        let ratio = std(&small_fan) / std(&large_fan);
        assert!((ratio - 10.0).abs() < 1.0, "ratio {ratio}");
    }
}
