//! Dense linear-algebra substrate for the IMC low-rank compression reproduction.
//!
//! This crate provides everything the higher layers need to reason about
//! weight matrices of convolutional and linear layers:
//!
//! * [`Matrix`] — a dense, row-major matrix with the usual arithmetic,
//!   slicing and stacking operations, generic over the [`Scalar`] element
//!   type (`f64` by default — the bit-exact reference precision — with `f32`
//!   as the SIMD-friendly fast path certified by `tests/differential.rs`).
//! * [`svd`] — a one-sided Jacobi singular value decomposition together with
//!   rank-`k` truncation (Eckart–Young optimal low-rank approximation).
//! * [`qr`] — Householder QR decomposition and least-squares solves.
//! * [`kron`] — Kronecker products and block-diagonal embeddings, used by the
//!   SDK-aware low-rank mapping (`D(SDK(W)) = (I_N ⊗ L)·SDK(R)`).
//! * [`random`] — deterministic, seeded random matrix generators used to
//!   synthesize network weights in the absence of trained checkpoints.
//!
//! The implementation is self-contained (no BLAS/LAPACK bindings) and uses no
//! `unsafe` code. Matrices in this problem domain are at most a few thousand
//! rows/columns (the largest im2col-matrixized layer of WRN16-4 is
//! `2304 × 256`), so the simple `O(n³)` algorithms used here are fast enough
//! for all experiments and benchmarks.
//!
//! # Example
//!
//! ```
//! use imc_linalg::{Matrix, svd::Svd};
//!
//! let w: Matrix = Matrix::from_rows(&[
//!     vec![4.0, 0.0, 0.0],
//!     vec![0.0, 3.0, 0.0],
//!     vec![0.0, 0.0, 1.0],
//! ]).unwrap();
//! let svd = Svd::compute(&w).unwrap();
//! assert!((svd.singular_values()[0] - 4.0).abs() < 1e-9);
//! let approx = svd.truncate(2).reconstruct();
//! // The rank-2 truncation drops the smallest singular value only.
//! assert!((&w - &approx).unwrap().frobenius_norm() - 1.0 < 1e-9);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod kron;
pub mod matrix;
pub mod norms;
pub mod qr;
pub mod random;
pub mod scalar;
pub mod solve;
pub mod svd;

pub use kron::{block_diag, identity_kron, kron};
pub use matrix::Matrix;
pub use norms::{frobenius_distance, spectral_norm};
pub use qr::Qr;
pub use random::{randn_matrix, randn_matrix_in, uniform_matrix, uniform_matrix_in, SeededRng};
pub use scalar::{Precision, Scalar};
pub use svd::{Svd, TruncatedSvd};

/// Errors produced by the linear-algebra layer.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum Error {
    /// A constructor was handed data whose length does not match the
    /// requested dimensions.
    DimensionMismatch {
        /// Expected number of elements (`rows * cols`).
        expected: usize,
        /// Number of elements actually provided.
        actual: usize,
    },
    /// Two operands have incompatible shapes for the requested operation.
    ShapeMismatch {
        /// Shape of the left operand as `(rows, cols)`.
        left: (usize, usize),
        /// Shape of the right operand as `(rows, cols)`.
        right: (usize, usize),
        /// Human-readable name of the operation that failed.
        op: &'static str,
    },
    /// A matrix with zero rows or zero columns was supplied where a non-empty
    /// matrix is required.
    EmptyMatrix,
    /// An index or sub-range lies outside the matrix bounds.
    OutOfBounds {
        /// The offending index.
        index: usize,
        /// The exclusive bound the index must stay below.
        bound: usize,
        /// Which axis (or quantity) the index refers to.
        what: &'static str,
    },
    /// An iterative algorithm (Jacobi SVD, power iteration, …) failed to
    /// converge within its iteration budget.
    NoConvergence {
        /// Name of the algorithm.
        algorithm: &'static str,
        /// Number of sweeps / iterations performed before giving up.
        iterations: usize,
    },
    /// The requested rank is invalid (zero, or larger than `min(rows, cols)`).
    InvalidRank {
        /// The requested rank.
        requested: usize,
        /// Maximum admissible rank for the matrix at hand.
        max: usize,
    },
    /// A solve was attempted against a (numerically) singular system.
    SingularSystem,
}

impl core::fmt::Display for Error {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Error::DimensionMismatch { expected, actual } => write!(
                f,
                "dimension mismatch: expected {expected} elements, got {actual}"
            ),
            Error::ShapeMismatch { left, right, op } => write!(
                f,
                "shape mismatch in {op}: left is {}x{}, right is {}x{}",
                left.0, left.1, right.0, right.1
            ),
            Error::EmptyMatrix => write!(f, "matrix must have at least one row and one column"),
            Error::OutOfBounds { index, bound, what } => {
                write!(f, "{what} index {index} out of bounds (must be < {bound})")
            }
            Error::NoConvergence {
                algorithm,
                iterations,
            } => write!(
                f,
                "{algorithm} did not converge after {iterations} iterations"
            ),
            Error::InvalidRank { requested, max } => {
                write!(f, "invalid rank {requested}: must be in 1..={max}")
            }
            Error::SingularSystem => write!(f, "system is singular or numerically rank-deficient"),
        }
    }
}

impl std::error::Error for Error {}

/// Convenient result alias used throughout the crate.
pub type Result<T> = core::result::Result<T, Error>;
