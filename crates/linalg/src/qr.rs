//! Householder QR decomposition and least-squares solves.
//!
//! QR is used by the spectral-norm power iteration (re-orthogonalization) and
//! by the least-squares routines in [`crate::solve`]; it also provides an
//! independent path to validate the SVD in tests.

use crate::scalar::Scalar;
use crate::{Error, Matrix, Result};

/// A thin QR decomposition `A = Q R` with `Q` of shape `m × n` (orthonormal
/// columns) and `R` upper-triangular of shape `n × n`, for `m ≥ n`.
#[derive(Debug, Clone)]
pub struct Qr<S: Scalar = f64> {
    q: Matrix<S>,
    r: Matrix<S>,
}

impl<S: Scalar> Qr<S> {
    /// Computes the thin QR decomposition of `a` (requires `rows ≥ cols`).
    ///
    /// # Errors
    ///
    /// Returns [`Error::ShapeMismatch`] if the matrix has more columns than
    /// rows (use the transpose, or an LQ formulation, for wide systems).
    #[allow(clippy::needless_range_loop)] // Householder kernels read clearer with explicit indices
    pub fn compute(a: &Matrix<S>) -> Result<Self> {
        let (m, n) = a.shape();
        if m < n {
            return Err(Error::ShapeMismatch {
                left: (m, n),
                right: (n, n),
                op: "thin QR (requires rows >= cols)",
            });
        }
        // Householder reflections applied to a working copy; Q accumulated by
        // applying the same reflections to the identity.
        let mut r_work = a.clone();
        let mut q_full = Matrix::<S>::identity(m);

        for k in 0..n {
            // Build the Householder vector for column k below the diagonal.
            let mut norm = S::ZERO;
            for i in k..m {
                let x = r_work.get(i, k);
                norm += x * x;
            }
            let norm = norm.sqrt();
            if norm <= S::EPSILON {
                continue;
            }
            let alpha = if r_work.get(k, k) >= S::ZERO {
                -norm
            } else {
                norm
            };
            let mut v = vec![S::ZERO; m];
            v[k] = r_work.get(k, k) - alpha;
            for i in (k + 1)..m {
                v[i] = r_work.get(i, k);
            }
            let vnorm2: S = v.iter().map(|&x| x * x).sum();
            if vnorm2 <= S::EPSILON {
                continue;
            }

            // Apply H = I - 2 v vᵀ / (vᵀ v) to R (from the left).
            for j in k..n {
                let mut dot = S::ZERO;
                for i in k..m {
                    dot += v[i] * r_work.get(i, j);
                }
                let factor = S::TWO * dot / vnorm2;
                for i in k..m {
                    let val = r_work.get(i, j) - factor * v[i];
                    r_work.set(i, j, val);
                }
            }
            // Accumulate into Q (apply H from the right: Q ← Q·H).
            for i in 0..m {
                let mut dot = S::ZERO;
                for l in k..m {
                    dot += q_full.get(i, l) * v[l];
                }
                let factor = S::TWO * dot / vnorm2;
                for l in k..m {
                    let val = q_full.get(i, l) - factor * v[l];
                    q_full.set(i, l, val);
                }
            }
        }

        let q = q_full.submatrix(0, 0, m, n)?;
        let mut r = Matrix::<S>::zeros(n, n);
        for i in 0..n {
            for j in i..n {
                r.set(i, j, r_work.get(i, j));
            }
        }
        Ok(Self { q, r })
    }

    /// The orthonormal factor `Q` (`m × n`).
    pub fn q(&self) -> &Matrix<S> {
        &self.q
    }

    /// The upper-triangular factor `R` (`n × n`).
    pub fn r(&self) -> &Matrix<S> {
        &self.r
    }

    /// Reconstructs `Q·R`.
    pub fn reconstruct(&self) -> Matrix<S> {
        self.q
            .matmul(&self.r)
            .expect("QR factor shapes are consistent by construction")
    }

    /// Solves the least-squares problem `min ‖A x − b‖₂` through the QR
    /// factors: `R x = Qᵀ b`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::ShapeMismatch`] if `b` has the wrong length and
    /// [`Error::SingularSystem`] if `R` is numerically singular.
    pub fn solve(&self, b: &[S]) -> Result<Vec<S>> {
        if b.len() != self.q.rows() {
            return Err(Error::ShapeMismatch {
                left: self.q.shape(),
                right: (b.len(), 1),
                op: "QR solve",
            });
        }
        let qtb = self.q.transpose().matvec(b)?;
        back_substitute(&self.r, &qtb)
    }
}

/// Solves the upper-triangular system `R x = y` by back substitution.
///
/// # Errors
///
/// Returns [`Error::SingularSystem`] when a diagonal entry is numerically
/// zero (below [`Scalar::SOLVE_TOL`]) and [`Error::ShapeMismatch`] on
/// incompatible dimensions.
#[allow(clippy::needless_range_loop)] // triangular solve reads clearer with explicit indices
pub fn back_substitute<S: Scalar>(r: &Matrix<S>, y: &[S]) -> Result<Vec<S>> {
    let n = r.cols();
    if r.rows() != n || y.len() != n {
        return Err(Error::ShapeMismatch {
            left: r.shape(),
            right: (y.len(), 1),
            op: "back substitution",
        });
    }
    let mut x = vec![S::ZERO; n];
    for i in (0..n).rev() {
        let mut sum = y[i];
        for j in (i + 1)..n {
            sum -= r.get(i, j) * x[j];
        }
        let diag = r.get(i, i);
        if diag.abs() <= S::SOLVE_TOL {
            return Err(Error::SingularSystem);
        }
        x[i] = sum / diag;
    }
    Ok(x)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::random::randn_matrix;

    #[test]
    fn qr_reconstructs_input() {
        let a = randn_matrix(12, 5, 1.0, 42);
        let qr = Qr::compute(&a).unwrap();
        assert!(qr.reconstruct().approx_eq(&a, 1e-9));
    }

    #[test]
    fn q_has_orthonormal_columns() {
        let a = randn_matrix(15, 6, 2.0, 8);
        let qr = Qr::compute(&a).unwrap();
        let qtq = qr.q().transpose().matmul(qr.q()).unwrap();
        assert!(qtq.approx_eq(&Matrix::identity(6), 1e-9));
    }

    #[test]
    fn r_is_upper_triangular() {
        let a = randn_matrix(9, 4, 1.0, 3);
        let qr = Qr::compute(&a).unwrap();
        for i in 0..4 {
            for j in 0..i {
                assert!(qr.r().get(i, j).abs() < 1e-10);
            }
        }
    }

    #[test]
    fn qr_rejects_wide_matrices() {
        let a = randn_matrix(3, 5, 1.0, 1);
        assert!(matches!(Qr::compute(&a), Err(Error::ShapeMismatch { .. })));
    }

    #[test]
    fn least_squares_recovers_exact_solution_of_square_system() {
        let a = Matrix::from_rows(&[vec![2.0, 1.0], vec![1.0, 3.0]]).unwrap();
        let x_true = vec![1.0, -2.0];
        let b = a.matvec(&x_true).unwrap();
        let qr = Qr::compute(&a).unwrap();
        let x = qr.solve(&b).unwrap();
        assert!((x[0] - 1.0).abs() < 1e-10);
        assert!((x[1] + 2.0).abs() < 1e-10);
    }

    #[test]
    fn least_squares_residual_is_orthogonal_to_columns() {
        let a = randn_matrix(20, 4, 1.0, 77);
        let b: Vec<f64> = (0..20).map(|i| (i as f64).sin()).collect();
        let qr = Qr::compute(&a).unwrap();
        let x = qr.solve(&b).unwrap();
        let ax = a.matvec(&x).unwrap();
        let residual: Vec<f64> = b.iter().zip(ax.iter()).map(|(bi, axi)| bi - axi).collect();
        // Normal equations: Aᵀ r = 0 at the least-squares optimum.
        let at_r = a.transpose().matvec(&residual).unwrap();
        assert!(at_r.iter().all(|&v| v.abs() < 1e-8));
    }

    #[test]
    fn solve_validates_rhs_length() {
        let a = randn_matrix(6, 3, 1.0, 5);
        let qr = Qr::compute(&a).unwrap();
        assert!(qr.solve(&[1.0; 5]).is_err());
    }

    #[test]
    fn back_substitution_detects_singularity() {
        let r = Matrix::from_rows(&[vec![1.0, 2.0], vec![0.0, 0.0]]).unwrap();
        assert!(matches!(
            back_substitute(&r, &[1.0, 1.0]),
            Err(Error::SingularSystem)
        ));
    }
}
