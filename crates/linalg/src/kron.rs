//! Kronecker products and block-diagonal embeddings.
//!
//! Theorem 2 of the paper expresses the low-rank factorization of an SDK
//! mapping as `D(SDK(W)) = (I_N ⊗ L) · SDK(R)`. The helpers in this module
//! build exactly those structured matrices so that the identity can be
//! verified numerically and so the mapping layer can materialize the
//! second-stage crossbar contents.

use crate::scalar::Scalar;
use crate::{Error, Matrix, Result};

/// Kronecker product `A ⊗ B`.
///
/// The result has shape `(a.rows·b.rows) × (a.cols·b.cols)` with blocks
/// `a[i][j] · B`.
pub fn kron<S: Scalar>(a: &Matrix<S>, b: &Matrix<S>) -> Matrix<S> {
    let (ar, ac) = a.shape();
    let (br, bc) = b.shape();
    let mut out = Matrix::<S>::zeros(ar * br, ac * bc);
    for i in 0..ar {
        for j in 0..ac {
            let scale = a.get(i, j);
            if scale == S::ZERO {
                continue;
            }
            for p in 0..br {
                for q in 0..bc {
                    out.set(i * br + p, j * bc + q, scale * b.get(p, q));
                }
            }
        }
    }
    out
}

/// Kronecker product of the `n × n` identity with `b`: `I_n ⊗ B`.
///
/// This is the block-diagonal matrix with `n` copies of `B` on the diagonal,
/// exactly the `Ĩ_N ⊗ L` factor of Theorem 2. It is computed directly,
/// without materializing the identity, because it is the common case.
pub fn identity_kron<S: Scalar>(n: usize, b: &Matrix<S>) -> Matrix<S> {
    assert!(n > 0, "identity dimension must be non-zero");
    let (br, bc) = b.shape();
    let mut out = Matrix::<S>::zeros(n * br, n * bc);
    for blk in 0..n {
        for p in 0..br {
            for q in 0..bc {
                out.set(blk * br + p, blk * bc + q, b.get(p, q));
            }
        }
    }
    out
}

/// Builds a block-diagonal matrix from the given (possibly differently
/// shaped) diagonal blocks.
///
/// # Errors
///
/// Returns [`Error::EmptyMatrix`] when no blocks are supplied.
pub fn block_diag<S: Scalar>(blocks: &[Matrix<S>]) -> Result<Matrix<S>> {
    if blocks.is_empty() {
        return Err(Error::EmptyMatrix);
    }
    let rows: usize = blocks.iter().map(Matrix::rows).sum();
    let cols: usize = blocks.iter().map(Matrix::cols).sum();
    let mut out = Matrix::<S>::zeros(rows, cols);
    let mut r0 = 0;
    let mut c0 = 0;
    for b in blocks {
        out.set_block(r0, c0, b)?;
        r0 += b.rows();
        c0 += b.cols();
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::random::randn_matrix;

    #[test]
    fn kron_shape_and_values() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        let b = Matrix::from_rows(&[vec![0.0, 5.0], vec![6.0, 7.0]]).unwrap();
        let k = kron(&a, &b);
        assert_eq!(k.shape(), (4, 4));
        assert_eq!(k.get(0, 1), 5.0); // 1 * 5
        assert_eq!(k.get(0, 3), 10.0); // 2 * 5
        assert_eq!(k.get(3, 0), 3.0 * 6.0);
        assert_eq!(k.get(3, 3), 4.0 * 7.0);
    }

    #[test]
    fn kron_with_identity_left_matches_identity_kron() {
        let b = randn_matrix(3, 2, 1.0, 4);
        let via_generic = kron(&Matrix::identity(4), &b);
        let via_fast = identity_kron(4, &b);
        assert!(via_generic.approx_eq(&via_fast, 1e-12));
    }

    #[test]
    fn kron_mixed_product_property() {
        // (A ⊗ B)(C ⊗ D) = (AC) ⊗ (BD)
        let a = randn_matrix(2, 3, 1.0, 1);
        let b = randn_matrix(2, 2, 1.0, 2);
        let c = randn_matrix(3, 2, 1.0, 3);
        let d = randn_matrix(2, 4, 1.0, 4);
        let lhs = kron(&a, &b).matmul(&kron(&c, &d)).unwrap();
        let rhs = kron(&a.matmul(&c).unwrap(), &b.matmul(&d).unwrap());
        assert!(lhs.approx_eq(&rhs, 1e-9));
    }

    #[test]
    fn identity_kron_is_block_diagonal() {
        let b = randn_matrix(2, 3, 1.0, 9);
        let k = identity_kron(3, &b);
        assert_eq!(k.shape(), (6, 9));
        // Off-diagonal blocks are exactly zero.
        assert_eq!(k.get(0, 3), 0.0);
        assert_eq!(k.get(5, 0), 0.0);
        // Diagonal blocks equal B.
        assert_eq!(k.get(4, 7), b.get(0, 1));
    }

    #[test]
    fn block_diag_of_heterogeneous_blocks() {
        let a = Matrix::filled(1, 2, 1.0);
        let b = Matrix::filled(2, 1, 2.0);
        let d = block_diag(&[a, b]).unwrap();
        assert_eq!(d.shape(), (3, 3));
        assert_eq!(d.get(0, 0), 1.0);
        assert_eq!(d.get(0, 1), 1.0);
        assert_eq!(d.get(1, 2), 2.0);
        assert_eq!(d.get(2, 2), 2.0);
        assert_eq!(d.get(0, 2), 0.0);
        assert_eq!(d.get(2, 0), 0.0);
    }

    #[test]
    fn block_diag_rejects_empty_input() {
        assert!(block_diag::<f64>(&[]).is_err());
    }

    #[test]
    fn block_diag_of_identical_blocks_equals_identity_kron() {
        let b = randn_matrix(3, 3, 1.0, 6);
        let blocks = vec![b.clone(), b.clone(), b.clone()];
        assert!(block_diag(&blocks)
            .unwrap()
            .approx_eq(&identity_kron(3, &b), 1e-12));
    }
}
