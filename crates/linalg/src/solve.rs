//! Linear solves built on the QR decomposition.

use crate::qr::Qr;
use crate::scalar::Scalar;
use crate::{Error, Matrix, Result};

/// Solves the least-squares problem `min_x ‖A x − b‖₂` for a tall or square
/// full-column-rank `A`.
///
/// # Errors
///
/// Propagates shape and singularity errors from the underlying QR solve.
pub fn least_squares<S: Scalar>(a: &Matrix<S>, b: &[S]) -> Result<Vec<S>> {
    Qr::compute(a)?.solve(b)
}

/// Solves `A X = B` column by column for a square, full-rank `A`.
///
/// # Errors
///
/// Returns [`Error::ShapeMismatch`] for non-square `A` or mismatched `B`,
/// and [`Error::SingularSystem`] when `A` is numerically singular.
pub fn solve_matrix<S: Scalar>(a: &Matrix<S>, b: &Matrix<S>) -> Result<Matrix<S>> {
    if !a.is_square() || a.rows() != b.rows() {
        return Err(Error::ShapeMismatch {
            left: a.shape(),
            right: b.shape(),
            op: "solve_matrix",
        });
    }
    let qr = Qr::compute(a)?;
    let mut cols = Vec::with_capacity(b.cols());
    for j in 0..b.cols() {
        cols.push(qr.solve(&b.col(j)?)?);
    }
    let mut x = Matrix::<S>::zeros(a.cols(), b.cols());
    for (j, col) in cols.iter().enumerate() {
        for (i, &v) in col.iter().enumerate() {
            x.set(i, j, v);
        }
    }
    Ok(x)
}

/// Computes the inverse of a square, full-rank matrix.
///
/// # Errors
///
/// Returns [`Error::ShapeMismatch`] for non-square inputs and
/// [`Error::SingularSystem`] for singular ones.
pub fn inverse<S: Scalar>(a: &Matrix<S>) -> Result<Matrix<S>> {
    solve_matrix(a, &Matrix::<S>::identity(a.rows()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::random::randn_matrix;

    #[test]
    fn least_squares_on_overdetermined_system() {
        let a = randn_matrix(30, 5, 1.0, 10);
        let x_true: Vec<f64> = (0..5).map(|i| i as f64 - 2.0).collect();
        let b = a.matvec(&x_true).unwrap();
        let x = least_squares(&a, &b).unwrap();
        for (got, want) in x.iter().zip(x_true.iter()) {
            assert!((got - want).abs() < 1e-8);
        }
    }

    #[test]
    fn solve_matrix_inverts_well_conditioned_system() {
        // Diagonally dominant => invertible.
        let mut a = randn_matrix(6, 6, 0.1, 3);
        for i in 0..6 {
            a.set(i, i, a.get(i, i) + 5.0);
        }
        let b = randn_matrix(6, 4, 1.0, 4);
        let x = solve_matrix(&a, &b).unwrap();
        assert!(a.matmul(&x).unwrap().approx_eq(&b, 1e-8));
    }

    #[test]
    fn inverse_times_original_is_identity() {
        let mut a = randn_matrix(5, 5, 0.2, 8);
        for i in 0..5 {
            a.set(i, i, a.get(i, i) + 3.0);
        }
        let inv = inverse(&a).unwrap();
        assert!(a
            .matmul(&inv)
            .unwrap()
            .approx_eq(&Matrix::identity(5), 1e-8));
    }

    #[test]
    fn solve_matrix_rejects_non_square() {
        let a = randn_matrix(4, 3, 1.0, 1);
        let b = randn_matrix(4, 2, 1.0, 2);
        assert!(solve_matrix(&a, &b).is_err());
    }

    #[test]
    fn inverse_of_singular_matrix_fails() {
        let a = Matrix::<f64>::zeros(3, 3);
        assert!(matches!(inverse(&a), Err(Error::SingularSystem)));
    }
}
