//! Matrix norms and distances.

use crate::scalar::Scalar;
use crate::{Error, Matrix, Result};

/// Maximum number of power-iteration steps for the spectral norm.
const POWER_ITER_MAX: usize = 500;

/// Frobenius distance `‖A − B‖_F` between two equally shaped matrices.
///
/// # Errors
///
/// Returns [`Error::ShapeMismatch`] when the shapes differ.
pub fn frobenius_distance<S: Scalar>(a: &Matrix<S>, b: &Matrix<S>) -> Result<S> {
    Ok(a.sub(b)?.frobenius_norm())
}

/// Relative Frobenius error `‖A − B‖_F / ‖A‖_F` (zero-norm references give
/// the absolute error instead).
///
/// # Errors
///
/// Returns [`Error::ShapeMismatch`] when the shapes differ.
pub fn relative_frobenius_error<S: Scalar>(reference: &Matrix<S>, approx: &Matrix<S>) -> Result<S> {
    let dist = frobenius_distance(reference, approx)?;
    let denom = reference.frobenius_norm();
    Ok(if denom > S::ZERO { dist / denom } else { dist })
}

/// Spectral norm (largest singular value) computed by power iteration on
/// `AᵀA`.
///
/// # Errors
///
/// Returns [`Error::NoConvergence`] if the Rayleigh quotient has not
/// stabilized after the iteration budget.
pub fn spectral_norm<S: Scalar>(a: &Matrix<S>) -> Result<S> {
    let ata = a.transpose().matmul(a)?;
    let n = ata.rows();
    // Deterministic non-degenerate start vector.
    let mut v: Vec<S> = (0..n)
        .map(|i| S::from_f64(1.0 + (i as f64) * 1e-3))
        .collect();
    normalize(&mut v);
    let mut lambda_prev = S::ZERO;
    for iter in 0..POWER_ITER_MAX {
        let mut w = ata.matvec(&v)?;
        let lambda: S = v.iter().zip(w.iter()).map(|(a, b)| *a * *b).sum();
        let norm = normalize(&mut w);
        if norm <= S::EPSILON {
            // A is (numerically) the zero matrix.
            return Ok(S::ZERO);
        }
        v = w;
        if (lambda - lambda_prev).abs() <= S::POWER_ITER_TOL * lambda.abs().max(S::TINY) {
            return Ok(lambda.max(S::ZERO).sqrt());
        }
        lambda_prev = lambda;
        if iter + 1 == POWER_ITER_MAX {
            break;
        }
    }
    Err(Error::NoConvergence {
        algorithm: "power iteration (spectral norm)",
        iterations: POWER_ITER_MAX,
    })
}

fn normalize<S: Scalar>(v: &mut [S]) -> S {
    let norm = v.iter().map(|&x| x * x).sum::<S>().sqrt();
    if norm > S::EPSILON {
        for x in v.iter_mut() {
            *x /= norm;
        }
    }
    norm
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::random::randn_matrix;
    use crate::svd::Svd;

    #[test]
    fn frobenius_distance_of_identical_matrices_is_zero() {
        let a = randn_matrix(5, 7, 1.0, 1);
        assert_eq!(frobenius_distance(&a, &a).unwrap(), 0.0);
    }

    #[test]
    fn frobenius_distance_checks_shapes() {
        let a = randn_matrix(2, 2, 1.0, 1);
        let b = randn_matrix(3, 2, 1.0, 1);
        assert!(frobenius_distance(&a, &b).is_err());
    }

    #[test]
    fn relative_error_is_scale_invariant() {
        let a = randn_matrix(6, 6, 1.0, 2);
        let b = a.map(|x| x * 1.01);
        let e1 = relative_frobenius_error(&a, &b).unwrap();
        let a10 = a.scale(10.0);
        let b10 = b.scale(10.0);
        let e2 = relative_frobenius_error(&a10, &b10).unwrap();
        assert!((e1 - e2).abs() < 1e-12);
    }

    #[test]
    fn spectral_norm_of_diagonal_matrix() {
        let a = Matrix::from_diag(&[2.0, -7.0, 3.0]);
        assert!((spectral_norm(&a).unwrap() - 7.0).abs() < 1e-9);
    }

    #[test]
    fn spectral_norm_matches_largest_singular_value() {
        let a = randn_matrix(14, 9, 1.0, 44);
        let sigma_max = Svd::compute(&a).unwrap().singular_values()[0];
        let spec = spectral_norm(&a).unwrap();
        assert!((spec - sigma_max).abs() < 1e-6 * sigma_max.max(1.0));
    }

    #[test]
    fn spectral_norm_of_zero_matrix_is_zero() {
        let z = Matrix::<f64>::zeros(4, 4);
        assert_eq!(spectral_norm(&z).unwrap(), 0.0);
    }

    #[test]
    fn spectral_norm_bounded_by_frobenius() {
        let a = randn_matrix(10, 10, 1.0, 5);
        assert!(spectral_norm(&a).unwrap() <= a.frobenius_norm() + 1e-9);
    }
}
