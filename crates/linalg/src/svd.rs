//! Singular value decomposition and Eckart–Young low-rank truncation.
//!
//! The decomposition is computed with the one-sided Jacobi method: columns of
//! the working matrix are repeatedly orthogonalized with plane rotations
//! while the same rotations are accumulated into `V`. The method is slower
//! than Golub–Kahan bidiagonalization but is simple, numerically robust and
//! more than fast enough for the layer-sized matrices (a few thousand rows by
//! a few hundred columns) that occur in this workspace.

use crate::scalar::Scalar;
use crate::{Error, Matrix, Result};

/// Maximum number of Jacobi sweeps before the algorithm reports
/// [`Error::NoConvergence`].
const MAX_SWEEPS: usize = 60;

/// Mutably borrows columns `p` and `q` (with `p < q`) of a column-major
/// buffer whose columns have length `len`.
#[inline]
fn column_pair<S: Scalar>(data: &mut [S], len: usize, p: usize, q: usize) -> (&mut [S], &mut [S]) {
    debug_assert!(p < q);
    let (head, tail) = data.split_at_mut(q * len);
    (&mut head[p * len..p * len + len], &mut tail[..len])
}

/// A full singular value decomposition `A = U Σ Vᵀ`.
///
/// `U` is `m × r`, `Σ` is represented by the vector of singular values of
/// length `r`, and `V` is `n × r`, where `r = min(m, n)`. Singular values are
/// sorted in non-increasing order.
#[derive(Debug, Clone)]
pub struct Svd<S: Scalar = f64> {
    u: Matrix<S>,
    singular_values: Vec<S>,
    v: Matrix<S>,
}

impl<S: Scalar> Svd<S> {
    /// Computes the SVD of `a` using one-sided Jacobi rotations.
    ///
    /// # Errors
    ///
    /// Returns [`Error::NoConvergence`] if the Jacobi sweeps fail to
    /// orthogonalize the columns within the iteration budget (this does not
    /// happen for well-scaled inputs such as neural-network weights).
    pub fn compute(a: &Matrix<S>) -> Result<Self> {
        let (m, n) = a.shape();
        // One-sided Jacobi works on the columns; for wide matrices it is both
        // cheaper and better conditioned to decompose the transpose and swap
        // the roles of U and V afterwards.
        if n > m {
            let svd_t = Self::compute(&a.transpose())?;
            return Ok(Self {
                u: svd_t.v,
                singular_values: svd_t.singular_values,
                v: svd_t.u,
            });
        }

        // Column-major working buffers: every Jacobi inner loop walks two
        // columns of the working matrix, so keeping each column contiguous
        // (column j at `u[j*m..][..m]`) turns the stride-`cols` accesses of a
        // row-major layout into unit-stride streams. The arithmetic (and thus
        // the result, bit for bit) is identical to the row-major formulation.
        let mut u = vec![S::ZERO; m * n]; // working columns converging to U·Σ
        for (i, row) in a.as_slice().chunks(n).enumerate() {
            for (j, &x) in row.iter().enumerate() {
                u[j * m + i] = x;
            }
        }
        let mut v = vec![S::ZERO; n * n]; // column-major identity
        for j in 0..n {
            v[j * n + j] = S::ONE;
        }
        let r = n;

        let mut converged = false;
        let mut sweeps = 0;
        while sweeps < MAX_SWEEPS && !converged {
            converged = true;
            for p in 0..r {
                for q in (p + 1)..r {
                    // Gram entries for columns p and q. The reduction is the
                    // scalar type's own: strict serial order for f64 (the
                    // bit-exact reference), a reassociated multi-lane pass
                    // for f32 (see `Scalar::jacobi_gram`).
                    let (up_col, uq_col) = column_pair(&mut u, m, p, q);
                    let (alpha, beta, gamma) = S::jacobi_gram(up_col, uq_col);
                    if gamma.abs() <= S::JACOBI_TOL * (alpha * beta).sqrt() || gamma == S::ZERO {
                        continue;
                    }
                    converged = false;
                    // Jacobi rotation that zeroes the (p, q) Gram entry.
                    let zeta = (beta - alpha) / (S::TWO * gamma);
                    let t = zeta.signum() / (zeta.abs() + (S::ONE + zeta * zeta).sqrt());
                    let c = S::ONE / (S::ONE + t * t).sqrt();
                    let s = c * t;
                    for (up_i, uq_i) in up_col.iter_mut().zip(uq_col.iter_mut()) {
                        let up = *up_i;
                        let uq = *uq_i;
                        *up_i = c * up - s * uq;
                        *uq_i = s * up + c * uq;
                    }
                    let (vp_col, vq_col) = column_pair(&mut v, n, p, q);
                    for (vp_i, vq_i) in vp_col.iter_mut().zip(vq_col.iter_mut()) {
                        let vp = *vp_i;
                        let vq = *vq_i;
                        *vp_i = c * vp - s * vq;
                        *vq_i = s * vp + c * vq;
                    }
                }
            }
            sweeps += 1;
        }
        if !converged {
            return Err(Error::NoConvergence {
                algorithm: "one-sided Jacobi SVD",
                iterations: sweeps,
            });
        }

        // Column norms of the rotated matrix are the singular values.
        let mut order: Vec<usize> = (0..r).collect();
        let mut sigma = vec![S::ZERO; r];
        for (j, s) in sigma.iter_mut().enumerate() {
            let mut norm = S::ZERO;
            for &x in &u[j * m..(j + 1) * m] {
                norm += x * x;
            }
            *s = norm.sqrt();
        }
        order.sort_by(|&a_idx, &b_idx| {
            sigma[b_idx]
                .partial_cmp(&sigma[a_idx])
                .unwrap_or(core::cmp::Ordering::Equal)
        });

        let mut u_sorted = Matrix::<S>::zeros(m, r);
        let mut v_sorted = Matrix::<S>::zeros(n, r);
        let mut sigma_sorted = vec![S::ZERO; r];
        for (new_j, &old_j) in order.iter().enumerate() {
            let s = sigma[old_j];
            sigma_sorted[new_j] = s;
            let u_col = &u[old_j * m..(old_j + 1) * m];
            for (i, &x) in u_col.iter().enumerate() {
                let val = if s > S::EPSILON { x / s } else { S::ZERO };
                u_sorted.set(i, new_j, val);
            }
            let v_col = &v[old_j * n..(old_j + 1) * n];
            for (i, &x) in v_col.iter().enumerate() {
                v_sorted.set(i, new_j, x);
            }
        }

        Ok(Self {
            u: u_sorted,
            singular_values: sigma_sorted,
            v: v_sorted,
        })
    }

    /// The left singular vectors, `m × r`.
    pub fn u(&self) -> &Matrix<S> {
        &self.u
    }

    /// The right singular vectors, `n × r` (not transposed).
    pub fn v(&self) -> &Matrix<S> {
        &self.v
    }

    /// The singular values in non-increasing order.
    pub fn singular_values(&self) -> &[S] {
        &self.singular_values
    }

    /// Converts the decomposition to another scalar width (rounding through
    /// `f64`), factor by factor. Widening `Svd<f32> -> Svd<f64>` is exact and
    /// is how the fast path hands results back to the `f64` reporting layer.
    pub fn cast<T: Scalar>(&self) -> Svd<T> {
        Svd {
            u: self.u.cast(),
            singular_values: self
                .singular_values
                .iter()
                .map(|&s| T::from_f64(s.to_f64()))
                .collect(),
            v: self.v.cast(),
        }
    }

    /// Numerical rank: the number of singular values above
    /// `tol * max(singular value)`.
    pub fn rank(&self, tol: S) -> usize {
        let max = self.singular_values.first().copied().unwrap_or(S::ZERO);
        self.singular_values
            .iter()
            .filter(|&&s| s > tol * max)
            .count()
    }

    /// Reconstructs the full matrix `U Σ Vᵀ`.
    pub fn reconstruct(&self) -> Matrix<S> {
        let sigma = Matrix::from_diag(&self.singular_values);
        self.u
            .matmul(&sigma)
            .and_then(|us| us.matmul(&self.v.transpose()))
            .expect("SVD factor shapes are consistent by construction")
    }

    /// Truncates the decomposition to the leading `k` singular triplets.
    ///
    /// The truncation is clamped to the available rank, so `k` larger than
    /// `min(m, n)` simply returns the full decomposition. A `k` of zero is
    /// clamped to one (a rank-zero factorization is never useful here).
    pub fn truncate(&self, k: usize) -> TruncatedSvd<S> {
        let r = self.singular_values.len();
        let k = k.clamp(1, r);
        let u_k = self
            .u
            .submatrix(0, 0, self.u.rows(), k)
            .expect("truncation rank validated against factor width");
        let v_k = self
            .v
            .submatrix(0, 0, self.v.rows(), k)
            .expect("truncation rank validated against factor width");
        TruncatedSvd {
            u: u_k,
            singular_values: self.singular_values[..k].to_vec(),
            v: v_k,
        }
    }

    /// The Eckart–Young optimal reconstruction error for a rank-`k`
    /// truncation: `sqrt(Σ_{i>k} σ_i²)`.
    pub fn truncation_error(&self, k: usize) -> S {
        self.singular_values
            .iter()
            .skip(k)
            .map(|&s| s * s)
            .sum::<S>()
            .sqrt()
    }
}

/// A rank-`k` truncated SVD, the basic low-rank factorization `W ≈ L·R`.
#[derive(Debug, Clone)]
pub struct TruncatedSvd<S: Scalar = f64> {
    u: Matrix<S>,
    singular_values: Vec<S>,
    v: Matrix<S>,
}

impl<S: Scalar> TruncatedSvd<S> {
    /// Computes the truncated SVD of `a` at rank `k` directly.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidRank`] if `k` is zero or exceeds `min(m, n)`,
    /// or propagates [`Error::NoConvergence`] from the Jacobi iteration.
    pub fn compute(a: &Matrix<S>, k: usize) -> Result<Self> {
        let max_rank = a.rows().min(a.cols());
        if k == 0 || k > max_rank {
            return Err(Error::InvalidRank {
                requested: k,
                max: max_rank,
            });
        }
        Ok(Svd::compute(a)?.truncate(k))
    }

    /// The retained rank `k`.
    pub fn rank(&self) -> usize {
        self.singular_values.len()
    }

    /// The truncated left singular vectors, `m × k`.
    pub fn u(&self) -> &Matrix<S> {
        &self.u
    }

    /// The truncated right singular vectors, `n × k`.
    pub fn v(&self) -> &Matrix<S> {
        &self.v
    }

    /// The retained singular values.
    pub fn singular_values(&self) -> &[S] {
        &self.singular_values
    }

    /// The left factor `L = U·Σ` of shape `m × k`.
    ///
    /// Following the paper's convention (Section III), the singular values
    /// are absorbed into the left factor.
    pub fn left_factor(&self) -> Matrix<S> {
        let sigma = Matrix::from_diag(&self.singular_values);
        self.u
            .matmul(&sigma)
            .expect("U and Σ shapes are consistent by construction")
    }

    /// The right factor `R = Vᵀ` of shape `k × n`.
    pub fn right_factor(&self) -> Matrix<S> {
        self.v.transpose()
    }

    /// Reconstructs the rank-`k` approximation `L·R`.
    pub fn reconstruct(&self) -> Matrix<S> {
        self.left_factor()
            .matmul(&self.right_factor())
            .expect("factor shapes are consistent by construction")
    }

    /// Frobenius reconstruction error `‖A − L·R‖_F` against a reference.
    ///
    /// # Errors
    ///
    /// Returns [`Error::ShapeMismatch`] when `reference` has a different
    /// shape than the reconstruction.
    pub fn reconstruction_error(&self, reference: &Matrix<S>) -> Result<S> {
        Ok(reference.sub(&self.reconstruct())?.frobenius_norm())
    }

    /// Number of parameters in the factorization, `k·(m + n)`.
    pub fn parameter_count(&self) -> usize {
        self.rank() * (self.u.rows() + self.v.rows())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::random::randn_matrix;

    #[test]
    fn svd_of_diagonal_matrix_recovers_diagonal() {
        let a = Matrix::from_diag(&[5.0, 3.0, 1.0]);
        let svd = Svd::compute(&a).unwrap();
        let sv = svd.singular_values();
        assert!((sv[0] - 5.0).abs() < 1e-10);
        assert!((sv[1] - 3.0).abs() < 1e-10);
        assert!((sv[2] - 1.0).abs() < 1e-10);
        assert!(svd.reconstruct().approx_eq(&a, 1e-9));
    }

    #[test]
    fn svd_reconstructs_random_tall_matrix() {
        let a = randn_matrix(40, 12, 0.5, 7);
        let svd = Svd::compute(&a).unwrap();
        assert!(svd.reconstruct().approx_eq(&a, 1e-8));
    }

    #[test]
    fn svd_reconstructs_random_wide_matrix() {
        let a = randn_matrix(9, 30, 1.0, 3);
        let svd = Svd::compute(&a).unwrap();
        assert_eq!(svd.u().shape(), (9, 9));
        assert_eq!(svd.v().shape(), (30, 9));
        assert!(svd.reconstruct().approx_eq(&a, 1e-8));
    }

    #[test]
    fn singular_values_are_sorted_and_nonnegative() {
        let a = randn_matrix(25, 25, 1.0, 11);
        let svd = Svd::compute(&a).unwrap();
        let sv = svd.singular_values();
        assert!(sv.windows(2).all(|w| w[0] >= w[1]));
        assert!(sv.iter().all(|&s| s >= 0.0));
    }

    #[test]
    fn left_and_right_factors_are_orthonormal() {
        let a = randn_matrix(20, 8, 1.0, 21);
        let svd = Svd::compute(&a).unwrap();
        let utu = svd.u().transpose().matmul(svd.u()).unwrap();
        let vtv = svd.v().transpose().matmul(svd.v()).unwrap();
        assert!(utu.approx_eq(&Matrix::identity(8), 1e-8));
        assert!(vtv.approx_eq(&Matrix::identity(8), 1e-8));
    }

    #[test]
    fn truncation_error_matches_eckart_young_tail() {
        let a = randn_matrix(16, 10, 1.0, 5);
        let svd = Svd::compute(&a).unwrap();
        for k in 1..=10 {
            let trunc = svd.truncate(k);
            let err = trunc.reconstruction_error(&a).unwrap();
            let tail = svd.truncation_error(k);
            assert!(
                (err - tail).abs() < 1e-8,
                "k={k}: measured {err} vs tail {tail}"
            );
        }
    }

    #[test]
    fn truncation_error_is_monotone_in_rank() {
        let a = randn_matrix(30, 18, 1.0, 13);
        let svd = Svd::compute(&a).unwrap();
        let errors: Vec<f64> = (1..=18).map(|k| svd.truncation_error(k)).collect();
        assert!(errors.windows(2).all(|w| w[0] >= w[1] - 1e-12));
        assert!(errors[17] < 1e-9);
    }

    #[test]
    fn truncated_svd_is_optimal_among_random_competitors() {
        // Eckart–Young: no rank-k factorization can beat the truncated SVD.
        let a = randn_matrix(12, 12, 1.0, 17);
        let k = 3;
        let best = TruncatedSvd::compute(&a, k).unwrap();
        let best_err = best.reconstruction_error(&a).unwrap();
        for seed in 0..5 {
            let l = randn_matrix(12, k, 1.0, 100 + seed);
            let r = randn_matrix(k, 12, 1.0, 200 + seed);
            let competitor_err = a.sub(&l.matmul(&r).unwrap()).unwrap().frobenius_norm();
            assert!(best_err <= competitor_err + 1e-9);
        }
    }

    #[test]
    fn truncated_svd_validates_rank() {
        let a = randn_matrix(6, 4, 1.0, 1);
        assert!(matches!(
            TruncatedSvd::compute(&a, 0),
            Err(Error::InvalidRank { .. })
        ));
        assert!(matches!(
            TruncatedSvd::compute(&a, 5),
            Err(Error::InvalidRank { .. })
        ));
        assert!(TruncatedSvd::compute(&a, 4).is_ok());
    }

    #[test]
    fn factor_shapes_and_parameter_count() {
        let a = randn_matrix(10, 6, 1.0, 9);
        let t = TruncatedSvd::compute(&a, 2).unwrap();
        assert_eq!(t.left_factor().shape(), (10, 2));
        assert_eq!(t.right_factor().shape(), (2, 6));
        assert_eq!(t.parameter_count(), 2 * (10 + 6));
        assert_eq!(t.rank(), 2);
    }

    #[test]
    fn rank_detects_low_rank_matrices() {
        // Build an exactly rank-2 matrix.
        let l = randn_matrix(10, 2, 1.0, 30);
        let r = randn_matrix(2, 8, 1.0, 31);
        let a = l.matmul(&r).unwrap();
        let svd = Svd::compute(&a).unwrap();
        assert_eq!(svd.rank(1e-9), 2);
        let t = svd.truncate(2);
        assert!(t.reconstruct().approx_eq(&a, 1e-8));
    }

    #[test]
    fn truncate_clamps_out_of_range_ranks() {
        let a = randn_matrix(5, 4, 1.0, 2);
        let svd = Svd::compute(&a).unwrap();
        assert_eq!(svd.truncate(0).rank(), 1);
        assert_eq!(svd.truncate(100).rank(), 4);
    }

    #[test]
    fn svd_handles_rank_one_and_tiny_matrices() {
        let a = Matrix::from_rows(&[vec![2.0], vec![0.0], vec![0.0]]).unwrap();
        let svd = Svd::compute(&a).unwrap();
        assert!((svd.singular_values()[0] - 2.0).abs() < 1e-12);
        assert!(svd.reconstruct().approx_eq(&a, 1e-12));

        let b = Matrix::from_rows(&[vec![-3.5]]).unwrap();
        let svd_b = Svd::compute(&b).unwrap();
        assert!((svd_b.singular_values()[0] - 3.5).abs() < 1e-12);
        assert!(svd_b.reconstruct().approx_eq(&b, 1e-12));
    }
}
